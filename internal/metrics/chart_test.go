package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func sampleChart() *Chart {
	c := NewChart("Test chart", "x", "y")
	c.AddSeries("up", []Point{{0, 0}, {1, 1}, {2, 2}})
	c.AddSeries("down", []Point{{0, 2}, {1, 1}, {2, 0}})
	return c
}

func TestChartRender(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().Render(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Test chart", "* up", "+ down", "y: y", "(x)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Crossing point (1,1) collides: rendered as '?'.
	if !strings.Contains(out, "?") {
		t.Fatalf("collision marker missing:\n%s", out)
	}
	// Axis labels carry the bounds.
	if !strings.Contains(out, "0") || !strings.Contains(out, "2") {
		t.Fatalf("bounds missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	var buf bytes.Buffer
	c := NewChart("Empty", "x", "y")
	if err := c.Render(&buf, 40, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no data)") {
		t.Fatalf("output: %s", buf.String())
	}
}

func TestChartDegenerateRanges(t *testing.T) {
	// Single point: both ranges are zero; must not divide by zero.
	c := NewChart("Point", "", "")
	c.AddSeries("p", []Point{{5, 7}})
	var buf bytes.Buffer
	if err := c.Render(&buf, 20, 6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatalf("point not drawn:\n%s", buf.String())
	}
}

func TestChartMinimumSize(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().Render(&buf, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(buf.String(), "\n")) < 5 {
		t.Fatalf("undersized render:\n%s", buf.String())
	}
}

func TestChartSeriesSortedByX(t *testing.T) {
	c := NewChart("", "", "")
	c.AddSeries("s", []Point{{3, 1}, {1, 2}, {2, 3}})
	if c.NumSeries() != 1 {
		t.Fatalf("series = %d", c.NumSeries())
	}
	var buf bytes.Buffer
	if err := c.Render(&buf, 30, 8); err != nil {
		t.Fatal(err)
	}
	// Bounds reflect the sorted range 1..3.
	if !strings.Contains(buf.String(), "1") || !strings.Contains(buf.String(), "3") {
		t.Fatalf("output:\n%s", buf.String())
	}
}

func TestChartManySeriesMarks(t *testing.T) {
	c := NewChart("", "", "")
	for i := 0; i < 10; i++ {
		c.AddSeries(strings.Repeat("s", i+1), []Point{{float64(i), float64(i)}})
	}
	var buf bytes.Buffer
	if err := c.Render(&buf, 30, 8); err != nil {
		t.Fatal(err)
	}
	// Marks wrap around after the palette is exhausted.
	if !strings.Contains(buf.String(), "* s\n") {
		t.Fatalf("legend missing:\n%s", buf.String())
	}
}
