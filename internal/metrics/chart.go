package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one (x, y) observation of a chart series.
type Point struct {
	X, Y float64
}

// Chart renders XY series as an ASCII line chart — a terminal rendition
// of the paper's figures.
type Chart struct {
	Title  string
	XLabel string
	YLabel string

	series []chartSeries
}

type chartSeries struct {
	name   string
	points []Point
}

// seriesMarks are assigned to series in order.
var seriesMarks = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

// NewChart creates an empty chart.
func NewChart(title, xLabel, yLabel string) *Chart {
	return &Chart{Title: title, XLabel: xLabel, YLabel: yLabel}
}

// AddSeries appends a named series; points are sorted by X.
func (c *Chart) AddSeries(name string, points []Point) {
	copied := make([]Point, len(points))
	copy(copied, points)
	sort.Slice(copied, func(i, j int) bool { return copied[i].X < copied[j].X })
	c.series = append(c.series, chartSeries{name: name, points: copied})
}

// NumSeries returns the number of series added.
func (c *Chart) NumSeries() int { return len(c.series) }

// Render draws the chart into w using the given plot-area size in
// characters. Sizes below 8x4 are raised to the minimum.
func (c *Chart) Render(w io.Writer, width, height int) error {
	if width < 8 {
		width = 8
	}
	if height < 4 {
		height = 4
	}
	minX, maxX, minY, maxY, any := c.bounds()
	if !any {
		_, err := fmt.Fprintf(w, "%s\n(no data)\n", c.Title)
		return err
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		mark := seriesMarks[si%len(seriesMarks)]
		for _, p := range s.points {
			col := int(math.Round((p.X - minX) / (maxX - minX) * float64(width-1)))
			row := int(math.Round((p.Y - minY) / (maxY - minY) * float64(height-1)))
			r := height - 1 - row
			if grid[r][col] == ' ' || grid[r][col] == mark {
				grid[r][col] = mark
			} else {
				grid[r][col] = '?' // collision between series
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title)
		b.WriteByte('\n')
	}
	yHi := fmt.Sprintf("%.3g", maxY)
	yLo := fmt.Sprintf("%.3g", minY)
	margin := len(yHi)
	if len(yLo) > margin {
		margin = len(yLo)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", margin)
		switch i {
		case 0:
			label = pad(yHi, margin)
		case height - 1:
			label = pad(yLo, margin)
		}
		b.WriteString(label)
		b.WriteString(" |")
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", margin))
	b.WriteString(" +")
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	xLo := fmt.Sprintf("%.3g", minX)
	xHi := fmt.Sprintf("%.3g", maxX)
	gap := width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	b.WriteString(strings.Repeat(" ", margin+2))
	b.WriteString(xLo)
	b.WriteString(strings.Repeat(" ", gap))
	b.WriteString(xHi)
	if c.XLabel != "" {
		b.WriteString("  (")
		b.WriteString(c.XLabel)
		b.WriteByte(')')
	}
	b.WriteByte('\n')
	for si, s := range c.series {
		fmt.Fprintf(&b, "  %c %s\n", seriesMarks[si%len(seriesMarks)], s.name)
	}
	if c.YLabel != "" {
		fmt.Fprintf(&b, "  y: %s\n", c.YLabel)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (c *Chart) bounds() (minX, maxX, minY, maxY float64, any bool) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for _, p := range s.points {
			any = true
			minX = math.Min(minX, p.X)
			maxX = math.Max(maxX, p.X)
			minY = math.Min(minY, p.Y)
			maxY = math.Max(maxY, p.Y)
		}
	}
	return minX, maxX, minY, maxY, any
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return strings.Repeat(" ", n-len(s)) + s
}
