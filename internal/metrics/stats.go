package metrics

import (
	"fmt"
	"math"
)

// Sample accumulates scalar observations and reports summary statistics
// (used to aggregate experiment cells across replications).
type Sample struct {
	n    int
	sum  float64
	sumq float64
	min  float64
	max  float64
}

// Add records one observation.
func (s *Sample) Add(v float64) {
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.n++
	s.sum += v
	s.sumq += v * v
}

// Merge folds another sample's observations into s, as if o's
// observations had been Added to s in aggregate. The accumulators are
// plain sums, so merging single-observation partials in a fixed order
// reproduces serial Add-order accumulation bit for bit — the property the
// parallel experiment engine relies on when it combines per-worker
// partials in cell order.
func (s *Sample) Merge(o Sample) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = o
		return
	}
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	s.n += o.n
	s.sum += o.sum
	s.sumq += o.sumq
}

// N returns the number of observations.
func (s *Sample) N() int { return s.n }

// Mean returns the sample mean (0 with no observations).
func (s *Sample) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// StdDev returns the sample standard deviation (n-1 denominator; 0 for
// fewer than two observations).
func (s *Sample) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	m := s.Mean()
	variance := (s.sumq - float64(s.n)*m*m) / float64(s.n-1)
	if variance < 0 {
		variance = 0 // numeric noise
	}
	return math.Sqrt(variance)
}

// Min returns the smallest observation (0 with no observations).
func (s *Sample) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 with no observations).
func (s *Sample) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// String renders "mean±sd" with four decimals, or just the mean for a
// single observation.
func (s *Sample) String() string {
	if s.n < 2 {
		return fmt.Sprintf("%.4f", s.Mean())
	}
	return fmt.Sprintf("%.4f±%.4f", s.Mean(), s.StdDev())
}
