package metrics

import (
	"bytes"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := NewTable("Sample", "name", "value", "ratio")
	t.AddRow("alpha", 42, 0.5)
	t.AddRow("beta-long-name", int64(7), 0.25)
	return t
}

func TestRenderAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + rule + 2 rows
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Sample" {
		t.Fatalf("title = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "value") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[3], "42") {
		t.Fatalf("row = %q", lines[3])
	}
	// Columns align: "value" header starts where "42" and "7" start.
	col := strings.Index(lines[1], "value")
	if lines[3][col:col+2] != "42" {
		t.Fatalf("misaligned row: %q", lines[3])
	}
}

func TestRenderNoTitle(t *testing.T) {
	tbl := NewTable("", "a")
	tbl.AddRow(1)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), "\n") {
		t.Fatal("empty title produced leading newline")
	}
}

func TestRenderCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if lines[0] != "name,value,ratio" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[1] != "alpha,42,0.5000" {
		t.Fatalf("csv row = %q", lines[1])
	}
}

func TestFormatCellVariants(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(float32(0.5))
	tbl.AddRow(struct{ X int }{1})
	rows := tbl.Rows()
	if rows[0][0] != "0.5000" {
		t.Fatalf("float32 cell = %q", rows[0][0])
	}
	if !strings.Contains(rows[1][0], "1") {
		t.Fatalf("fallback cell = %q", rows[1][0])
	}
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tbl.NumRows())
	}
}

func TestPercent(t *testing.T) {
	tests := []struct {
		in   float64
		want string
	}{
		{0, "0.0%"},
		{0.125, "12.5%"},
		{1, "100.0%"},
	}
	for _, tt := range tests {
		if got := Percent(tt.in); got != tt.want {
			t.Errorf("Percent(%v) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStringRendersTable(t *testing.T) {
	s := sampleTable().String()
	if !strings.Contains(s, "Sample") || !strings.Contains(s, "alpha") {
		t.Fatalf("String = %q", s)
	}
}

func TestSample(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty sample accessors wrong")
	}
	s.Add(2)
	if s.String() != "2.0000" {
		t.Fatalf("single String = %q", s.String())
	}
	s.Add(4)
	s.Add(6)
	if s.N() != 3 || s.Mean() != 4 {
		t.Fatalf("n=%d mean=%v", s.N(), s.Mean())
	}
	if got := s.StdDev(); got != 2 {
		t.Fatalf("stddev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 6 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if !strings.Contains(s.String(), "±") {
		t.Fatalf("String = %q", s.String())
	}
}
