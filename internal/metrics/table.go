// Package metrics provides small reporting utilities: aligned text tables
// and CSV output for the experiment harness, mirroring the rows/series the
// paper's figures plot.
package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-aligned text table with a title.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; cells are formatted with %v unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the formatted rows. The caller must not modify them.
func (t *Table) Rows() [][]string { return t.rows }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i, w := range widths {
		rule[i] = strings.Repeat("-", w)
	}
	writeRow(rule)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (header row + data rows; the title is
// omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("metrics: write csv header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: write csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

func formatCell(c any) string {
	switch v := c.(type) {
	case string:
		return v
	case float64:
		return strconv.FormatFloat(v, 'f', 4, 64)
	case float32:
		return strconv.FormatFloat(float64(v), 'f', 4, 64)
	case int:
		return strconv.Itoa(v)
	case int64:
		return strconv.FormatInt(v, 10)
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// Percent formats a ratio as a percentage with one decimal, e.g. "12.5%".
func Percent(ratio float64) string {
	return strconv.FormatFloat(100*ratio, 'f', 1, 64) + "%"
}
