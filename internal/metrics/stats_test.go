package metrics

import (
	"math"
	"testing"
)

// TestSampleMergeMatchesSerial accumulates a value stream serially and
// through merged per-worker partials; mean, variance and extrema must
// agree to 1e-9 for any partition.
func TestSampleMergeMatchesSerial(t *testing.T) {
	values := make([]float64, 101)
	for i := range values {
		// A deterministic, irregular stream spanning several magnitudes.
		values[i] = math.Sin(float64(i)*0.7)*42.5 + float64(i%7) - 3.25
	}
	var serial Sample
	for _, v := range values {
		serial.Add(v)
	}
	for _, parts := range []int{1, 2, 3, 5, 8, len(values)} {
		partials := make([]Sample, parts)
		for i, v := range values {
			partials[i%parts].Add(v)
		}
		var merged Sample
		for _, p := range partials {
			merged.Merge(p)
		}
		if merged.N() != serial.N() {
			t.Fatalf("parts=%d: n = %d, want %d", parts, merged.N(), serial.N())
		}
		const tol = 1e-9
		if d := math.Abs(merged.Mean() - serial.Mean()); d > tol {
			t.Fatalf("parts=%d: mean differs by %g", parts, d)
		}
		sd, want := merged.StdDev(), serial.StdDev()
		if d := math.Abs(sd*sd - want*want); d > tol {
			t.Fatalf("parts=%d: variance differs by %g", parts, d)
		}
		if merged.Min() != serial.Min() || merged.Max() != serial.Max() {
			t.Fatalf("parts=%d: extrema [%v,%v], want [%v,%v]",
				parts, merged.Min(), merged.Max(), serial.Min(), serial.Max())
		}
	}
}

// TestSampleMergeSingleObservations is the engine's exact usage: merging
// single-observation partials in a fixed order must reproduce serial Add
// calls bit-for-bit (plain sums in the same order), which is what makes
// parallel sweeps byte-identical to serial ones.
func TestSampleMergeSingleObservations(t *testing.T) {
	values := []float64{0.97, 1.0 / 3, 0.5001, 0.25, 0.999999}
	var serial, merged Sample
	for _, v := range values {
		serial.Add(v)
		var single Sample
		single.Add(v)
		merged.Merge(single)
	}
	if serial != merged {
		t.Fatalf("merged single observations %+v != serial %+v", merged, serial)
	}
}

func TestSampleMergeEmpty(t *testing.T) {
	var a Sample
	a.Add(2)
	a.Add(4)
	before := a
	a.Merge(Sample{})
	if a != before {
		t.Fatalf("merging an empty partial changed the sample: %+v -> %+v", before, a)
	}
	var empty Sample
	empty.Merge(before)
	if empty != before {
		t.Fatalf("merging into an empty sample: got %+v, want %+v", empty, before)
	}
	var both Sample
	both.Merge(Sample{})
	if both.N() != 0 {
		t.Fatalf("empty+empty has n=%d", both.N())
	}
}

func TestSampleMergeSingleElement(t *testing.T) {
	var a, b Sample
	a.Add(7.5)
	b.Merge(a)
	if b.N() != 1 || b.Mean() != 7.5 || b.Min() != 7.5 || b.Max() != 7.5 {
		t.Fatalf("single-element merge: %+v", b)
	}
	if b.StdDev() != 0 {
		t.Fatalf("single-element stddev = %v", b.StdDev())
	}
	var c Sample
	c.Add(2.5)
	c.Merge(a)
	if c.N() != 2 || c.Mean() != 5 || c.Min() != 2.5 || c.Max() != 7.5 {
		t.Fatalf("two singles merged: %+v", c)
	}
}
