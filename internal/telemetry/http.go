package telemetry

import (
	"fmt"
	"net/http"
)

// Handler serves the registry over HTTP:
//
//	GET /metrics  — Prometheus text exposition format
//	GET /healthz  — 200 "ok" liveness probe
//
// Mount it on a plain http.Server; cmd/drtpnode does so behind its
// -metrics flag.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}
