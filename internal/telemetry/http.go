package telemetry

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry over HTTP:
//
//	GET /metrics       — Prometheus text exposition format
//	GET /healthz       — 200 "ok" liveness probe
//	GET /readyz        — readiness probe (see HandlerWithReady)
//	GET /debug/pprof/  — stdlib profiling endpoints (CPU, heap, goroutine,
//	                     block, mutex, execution trace)
//
// Mount it on a plain http.Server; cmd/drtpnode does so behind its
// -metrics flag. Handler's /readyz always reports ready; processes with a
// real readiness condition use HandlerWithReady.
func Handler(reg *Registry) http.Handler {
	return HandlerWithReady(reg, nil)
}

// HandlerWithReady is Handler with a readiness probe. /healthz stays a pure
// liveness check (200 while the process serves HTTP at all); /readyz asks
// ready() and answers 200 "ok" when ready or 503 with the reason when not.
// The node runtime reports unready before its first link-state sync and
// again while draining, so load balancers stop steering setup requests at
// a node that cannot (or should no longer) take them. A nil ready means
// always ready.
func HandlerWithReady(reg *Registry, ready func() (ok bool, reason string)) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if ready != nil {
			if ok, reason := ready(); !ok {
				w.WriteHeader(http.StatusServiceUnavailable)
				if reason == "" {
					reason = "not ready"
				}
				fmt.Fprintln(w, reason)
				return
			}
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
