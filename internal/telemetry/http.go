package telemetry

import (
	"fmt"
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry over HTTP:
//
//	GET /metrics       — Prometheus text exposition format
//	GET /healthz       — 200 "ok" liveness probe
//	GET /debug/pprof/  — stdlib profiling endpoints (CPU, heap, goroutine,
//	                     block, mutex, execution trace)
//
// Mount it on a plain http.Server; cmd/drtpnode does so behind its
// -metrics flag.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
