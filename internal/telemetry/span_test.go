package telemetry_test

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"testing"

	"github.com/rtcl/drtp/internal/telemetry"
)

// ev is shorthand for building raw trace events in tests; identity fields
// default to "not applicable" like the emit helpers do.
func ev(t float64, kind telemetry.EventKind, mut func(*telemetry.Event)) telemetry.Event {
	e := telemetry.Event{T: t, Kind: kind, Conn: -1, Node: -1, Link: -1, Hops: -1, N: 1}
	if mut != nil {
		mut(&e)
	}
	return e
}

// connEv builds a connection-scoped event carrying the span context.
func connEv(t float64, kind telemetry.EventKind, scheme string, conn int64, mut func(*telemetry.Event)) telemetry.Event {
	return ev(t, kind, func(e *telemetry.Event) {
		e.Scheme = scheme
		e.Conn = conn
		e.Trace = telemetry.ConnTrace(scheme, conn)
		if mut != nil {
			mut(e)
		}
	})
}

// TestBuildTraceLifecycle reconstructs one connection's full lifecycle —
// request, primary setup, backup registration, establishment, hop signals
// from three routers, a link failure, the destructive switch, and the
// teardown — and checks every derived span field.
func TestBuildTraceLifecycle(t *testing.T) {
	const scheme = "D-LSR"
	const conn = int64(7)
	events := []telemetry.Event{
		connEv(1.0, telemetry.EvConnRequest, scheme, conn, func(e *telemetry.Event) { e.Node = 0 }),
		connEv(1.1, telemetry.EvHopSignal, scheme, conn, func(e *telemetry.Event) { e.Node = 1; e.Link = 3; e.Reason = "primary" }),
		connEv(1.2, telemetry.EvHopSignal, scheme, conn, func(e *telemetry.Event) { e.Node = 2; e.Reason = "primary" }),
		connEv(1.3, telemetry.EvPrimarySetup, scheme, conn, func(e *telemetry.Event) { e.Node = 0; e.Hops = 2 }),
		connEv(1.4, telemetry.EvBackupRegister, scheme, conn, func(e *telemetry.Event) { e.Node = 0; e.Hops = 3 }),
		connEv(1.5, telemetry.EvConnEstablish, scheme, conn, func(e *telemetry.Event) { e.Node = 0; e.Hops = 2 }),
		ev(2.0, telemetry.EvLinkFail, func(e *telemetry.Event) { e.Node = 1; e.Link = 3 }),
		connEv(2.25, telemetry.EvBackupActivate, scheme, conn, func(e *telemetry.Event) { e.Node = 0; e.Link = 3; e.Reason = "switch" }),
		connEv(3.0, telemetry.EvConnTeardown, scheme, conn, func(e *telemetry.Event) { e.Node = 0 }),
	}

	tr := telemetry.BuildTrace(events)
	if tr.Total != len(events) {
		t.Fatalf("total = %d, want %d", tr.Total, len(events))
	}
	if len(tr.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(tr.Spans))
	}
	sp := tr.Spans[0]
	if sp.Conn != conn || sp.Scheme != scheme {
		t.Fatalf("span identity = (%d, %q)", sp.Conn, sp.Scheme)
	}
	if sp.Trace != int64(telemetry.ConnTrace(scheme, conn)) {
		t.Fatalf("span trace = %d", sp.Trace)
	}
	if sp.RequestT != 1.0 || sp.SetupT != 1.3 || sp.RegisterT != 1.4 ||
		sp.ActiveT != 1.5 || sp.SwitchT != 2.25 || sp.TeardownT != 3.0 {
		t.Fatalf("phase timestamps: %+v", sp)
	}
	if sp.RejectT != -1 || sp.DropT != -1 {
		t.Fatalf("unexpected reject/drop timestamps: %+v", sp)
	}
	if sp.Backups != 1 {
		t.Fatalf("backups = %d", sp.Backups)
	}
	// Teardown after the switch: the span still reports the switch, which
	// is the interesting outcome.
	if sp.Outcome != "released" {
		t.Fatalf("outcome = %q", sp.Outcome)
	}
	// Three distinct routers emitted events for this span.
	if len(sp.Nodes) != 3 || sp.Nodes[0] != 0 || sp.Nodes[1] != 1 || sp.Nodes[2] != 2 {
		t.Fatalf("nodes = %v", sp.Nodes)
	}
	if len(sp.Events) != 8 { // all but the link-fail
		t.Fatalf("span events = %d", len(sp.Events))
	}

	if len(tr.Recoveries) != 1 {
		t.Fatalf("recoveries = %d", len(tr.Recoveries))
	}
	rec := tr.Recoveries[0]
	if rec.Link != 3 || rec.FailT != 2.0 {
		t.Fatalf("recovery span: %+v", rec)
	}
	if len(rec.Outcomes) != 1 {
		t.Fatalf("recovery outcomes = %d", len(rec.Outcomes))
	}
	o := rec.Outcomes[0]
	if !o.Recovered || o.Conn != conn || o.Disruption != 0.25 {
		t.Fatalf("recovery outcome: %+v", o)
	}
}

// TestBuildTraceOutcomes checks the span outcome derivation for every
// terminal state.
func TestBuildTraceOutcomes(t *testing.T) {
	cases := []struct {
		name    string
		events  []telemetry.Event
		outcome string
	}{
		{
			"rejected",
			[]telemetry.Event{
				connEv(1, telemetry.EvConnRequest, "BF", 1, nil),
				connEv(2, telemetry.EvConnReject, "BF", 1, func(e *telemetry.Event) { e.Reason = "no-primary" }),
			},
			"rejected",
		},
		{
			"active",
			[]telemetry.Event{
				connEv(1, telemetry.EvConnRequest, "BF", 2, nil),
				connEv(2, telemetry.EvConnEstablish, "BF", 2, nil),
			},
			"active",
		},
		{
			"released",
			[]telemetry.Event{
				connEv(1, telemetry.EvConnRequest, "BF", 3, nil),
				connEv(2, telemetry.EvConnEstablish, "BF", 3, nil),
				connEv(3, telemetry.EvConnTeardown, "BF", 3, nil),
			},
			"released",
		},
		{
			"switched",
			[]telemetry.Event{
				connEv(1, telemetry.EvConnEstablish, "BF", 4, nil),
				connEv(2, telemetry.EvBackupActivate, "BF", 4, func(e *telemetry.Event) { e.Reason = "switch" }),
			},
			"switched",
		},
		{
			"dropped",
			[]telemetry.Event{
				connEv(1, telemetry.EvConnEstablish, "BF", 5, nil),
				connEv(2, telemetry.EvActivationDenied, "BF", 5, func(e *telemetry.Event) { e.Reason = "dropped" }),
			},
			"dropped",
		},
		{
			"pending",
			[]telemetry.Event{
				connEv(1, telemetry.EvConnRequest, "BF", 6, nil),
			},
			"pending",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := telemetry.BuildTrace(tc.events)
			if len(tr.Spans) != 1 {
				t.Fatalf("spans = %d", len(tr.Spans))
			}
			if got := tr.Spans[0].Outcome; got != tc.outcome {
				t.Fatalf("outcome = %q, want %q", got, tc.outcome)
			}
		})
	}
}

// TestBuildTraceConnIDReuse: a second conn-request on the same
// (scheme, conn) — a later simulation cell reusing IDs — must open a
// fresh span rather than folding into the finished one.
func TestBuildTraceConnIDReuse(t *testing.T) {
	events := []telemetry.Event{
		connEv(1, telemetry.EvConnRequest, "P-LSR", 9, nil),
		connEv(2, telemetry.EvConnEstablish, "P-LSR", 9, nil),
		connEv(3, telemetry.EvConnTeardown, "P-LSR", 9, nil),
		connEv(10, telemetry.EvConnRequest, "P-LSR", 9, nil),
		connEv(11, telemetry.EvConnReject, "P-LSR", 9, func(e *telemetry.Event) { e.Reason = "no-primary" }),
	}
	tr := telemetry.BuildTrace(events)
	if len(tr.Spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(tr.Spans))
	}
	if tr.Spans[0].Outcome != "released" || tr.Spans[1].Outcome != "rejected" {
		t.Fatalf("outcomes = %q, %q", tr.Spans[0].Outcome, tr.Spans[1].Outcome)
	}
}

// TestBuildTraceLegacyEvents: events without a propagated trace ID (older
// traces) still join into one span via the synthetic (scheme, conn) key.
func TestBuildTraceLegacyEvents(t *testing.T) {
	events := []telemetry.Event{
		ev(1, telemetry.EvConnRequest, func(e *telemetry.Event) { e.Scheme = "D-LSR"; e.Conn = 4 }),
		ev(2, telemetry.EvConnEstablish, func(e *telemetry.Event) { e.Scheme = "D-LSR"; e.Conn = 4 }),
	}
	tr := telemetry.BuildTrace(events)
	if len(tr.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(tr.Spans))
	}
	if tr.Spans[0].Outcome != "active" {
		t.Fatalf("outcome = %q", tr.Spans[0].Outcome)
	}
	if tr.Spans[0].Trace != int64(telemetry.ConnTrace("D-LSR", 4)) {
		t.Fatalf("synthetic trace = %d", tr.Spans[0].Trace)
	}
}

// TestBuildTraceRecoveryWithoutLink: a destructive denial that carries no
// link (edge-bundle drops) attaches to the most recent failure.
func TestBuildTraceRecoveryWithoutLink(t *testing.T) {
	events := []telemetry.Event{
		connEv(1, telemetry.EvConnEstablish, "D-LSR", 1, nil),
		ev(5, telemetry.EvLinkFail, func(e *telemetry.Event) { e.Link = 2 }),
		ev(6, telemetry.EvLinkFail, func(e *telemetry.Event) { e.Link = 8 }),
		connEv(6.5, telemetry.EvActivationDenied, "D-LSR", 1, func(e *telemetry.Event) { e.Reason = "dropped" }),
	}
	tr := telemetry.BuildTrace(events)
	if len(tr.Recoveries) != 2 {
		t.Fatalf("recoveries = %d", len(tr.Recoveries))
	}
	first, second := tr.Recoveries[0], tr.Recoveries[1]
	if len(first.Outcomes) != 0 {
		t.Fatalf("outcome attached to the wrong failure: %+v", first)
	}
	if len(second.Outcomes) != 1 || second.Outcomes[0].Recovered {
		t.Fatalf("second recovery span: %+v", second)
	}
	if got := second.Outcomes[0].Disruption; got != 0.5 {
		t.Fatalf("disruption = %v", got)
	}
}

// TestBuildReport exercises the aggregate report: per-scheme tallies and
// fault tolerance, the disruption histogram including the overflow
// bucket, link criticality ordering, and occupancy aggregation.
func TestBuildReport(t *testing.T) {
	var events []telemetry.Event
	// Scheme A: 3 requests, 2 established, 1 rejected; eval sweep sees 2
	// recovered + 1 denied on link 0 -> P_act-bk = 2/3.
	for conn := int64(1); conn <= 3; conn++ {
		events = append(events, connEv(float64(conn), telemetry.EvConnRequest, "A", conn, nil))
		if conn == 3 {
			events = append(events, connEv(float64(conn)+0.1, telemetry.EvConnReject, "A", conn, func(e *telemetry.Event) { e.Reason = "no-primary" }))
			continue
		}
		events = append(events, connEv(float64(conn)+0.1, telemetry.EvBackupRegister, "A", conn, nil))
		events = append(events, connEv(float64(conn)+0.2, telemetry.EvConnEstablish, "A", conn, nil))
	}
	events = append(events,
		connEv(10, telemetry.EvBackupActivate, "A", 1, func(e *telemetry.Event) { e.Link = 0; e.N = 2 }),
		connEv(10, telemetry.EvActivationDenied, "A", 2, func(e *telemetry.Event) { e.Link = 0; e.Reason = "contention" }),
	)
	// Scheme B: one destructive failure on link 5 — one switch (disruption
	// 0.004, first bucket) and one drop; a second failure on link 5 with a
	// huge disruption lands in the +Inf bucket.
	events = append(events,
		connEv(11, telemetry.EvConnEstablish, "B", 21, nil),
		connEv(11.5, telemetry.EvConnEstablish, "B", 22, nil),
		ev(20, telemetry.EvLinkFail, func(e *telemetry.Event) { e.Link = 5 }),
		connEv(20.004, telemetry.EvBackupActivate, "B", 21, func(e *telemetry.Event) { e.Link = 5; e.Reason = "switch" }),
		connEv(20.004, telemetry.EvActivationDenied, "B", 22, func(e *telemetry.Event) { e.Link = 5; e.Reason = "dropped" }),
		ev(30, telemetry.EvLinkFail, func(e *telemetry.Event) { e.Link = 5 }),
		connEv(40, telemetry.EvBackupActivate, "B", 21, func(e *telemetry.Event) { e.Link = 5; e.Reason = "switch" }),
	)
	// Occupancy samples for scheme B, link 5.
	events = append(events,
		ev(21, telemetry.EvLinkState, func(e *telemetry.Event) { e.Scheme = "B"; e.Link = 5; e.Prime = 4; e.Spare = 2; e.Mux = 3 }),
		ev(22, telemetry.EvLinkState, func(e *telemetry.Event) { e.Scheme = "B"; e.Link = 5; e.Prime = 6; e.Spare = 4; e.Mux = 5 }),
	)

	rep := telemetry.BuildReport(telemetry.BuildTrace(events))

	if rep.Failures != 2 {
		t.Fatalf("failures = %d", rep.Failures)
	}
	if len(rep.Schemes) != 2 || rep.Schemes[0].Scheme != "A" || rep.Schemes[1].Scheme != "B" {
		t.Fatalf("schemes: %+v", rep.Schemes)
	}
	a := rep.Schemes[0]
	if a.Requests != 3 || a.Established != 2 || a.Rejected != 1 || a.BackupOK != 2 {
		t.Fatalf("scheme A tallies: %+v", a)
	}
	// The N=2 activate counts double in the numerator.
	if a.EvalRecovered != 2 || a.EvalDenied != 1 || a.EvalAffected != 3 {
		t.Fatalf("scheme A eval: %+v", a)
	}
	if math.Abs(a.FaultTolerance-2.0/3.0) > 1e-12 {
		t.Fatalf("scheme A P_act-bk = %v", a.FaultTolerance)
	}
	if a.DeniedReasons["contention"] != 1 {
		t.Fatalf("denied reasons: %v", a.DeniedReasons)
	}
	b := rep.Schemes[1]
	if b.Switched != 2 || b.Dropped != 1 || b.EvalAffected != 0 || b.FaultTolerance != 0 {
		t.Fatalf("scheme B tallies: %+v", b)
	}

	d := rep.Disruption
	if d.Samples != 2 || math.Abs(d.Min-0.004) > 1e-9 || d.Max != 10 {
		t.Fatalf("disruption: %+v", d)
	}
	if n := len(d.Buckets); n != len(telemetry.DefaultDisruptionBounds)+1 {
		t.Fatalf("buckets = %d", n)
	}
	if d.Buckets[1].Le != 0.01 || d.Buckets[1].Count != 1 {
		t.Fatalf("0.01 bucket: %+v", d.Buckets)
	}
	last := d.Buckets[len(d.Buckets)-1]
	if !math.IsInf(last.Le, 1) || last.Count != 1 {
		t.Fatalf("+Inf bucket: %+v", last)
	}

	// Link 5 (1 unrecovered drop + 2 failures) outranks link 0 only on
	// count; link 0 has 1 eval denial. Criticality ties at 1 break on
	// recovered+switched: link 5 has 2 switches vs link 0's 2 recovered —
	// then link ID. Just assert the computed criticalities.
	if len(rep.Links) != 2 {
		t.Fatalf("links = %d", len(rep.Links))
	}
	for _, l := range rep.Links {
		switch l.Link {
		case 0:
			if l.Criticality() != 1 || l.EvalRecovered != 2 || l.Failures != 0 {
				t.Fatalf("link 0: %+v", l)
			}
		case 5:
			if l.Criticality() != 1 || l.Switched != 2 || l.Dropped != 1 || l.Failures != 2 {
				t.Fatalf("link 5: %+v", l)
			}
		default:
			t.Fatalf("unexpected link %d", l.Link)
		}
	}

	if len(rep.Occupancy) != 1 {
		t.Fatalf("occupancy = %+v", rep.Occupancy)
	}
	o := rep.Occupancy[0]
	if o.Scheme != "B" || o.Link != 5 || o.Samples != 2 ||
		o.AvgPrime != 5 || o.AvgSpare != 3 || o.MaxSpare != 4 || o.MaxMux != 5 {
		t.Fatalf("occupancy: %+v", o)
	}
}

// TestConnTraceProperties pins the span-context derivation: deterministic,
// 53-bit JSON-safe, never zero, and distinct across schemes and conn IDs.
func TestConnTraceProperties(t *testing.T) {
	if telemetry.ConnTrace("D-LSR", 7) != telemetry.ConnTrace("D-LSR", 7) {
		t.Fatal("ConnTrace not deterministic")
	}
	seen := map[uint64]string{}
	for _, scheme := range []string{"D-LSR", "P-LSR", "BF", ""} {
		for conn := int64(0); conn < 100; conn++ {
			id := telemetry.ConnTrace(scheme, conn)
			if id == 0 {
				t.Fatalf("zero trace for (%q, %d)", scheme, conn)
			}
			if id >= 1<<53 {
				t.Fatalf("trace %d exceeds 53 bits", id)
			}
			key := fmt.Sprintf("%s/%d", scheme, conn)
			if prev, dup := seen[id]; dup {
				t.Fatalf("collision: %s and %s -> %d", prev, key, id)
			}
			seen[id] = key
		}
	}
}

// TestConcurrentSpanEmitJSONLRoundTrip drives full lifecycle span emits
// from many goroutines into a JSONL sink and decodes what was encoded
// (run under -race in CI): every event survives the round trip and the
// reconstructed spans are complete.
func TestConcurrentSpanEmitJSONLRoundTrip(t *testing.T) {
	const (
		workers = 8
		conns   = 25
		perConn = 5 // request, setup, register, establish, teardown
	)
	var buf bytes.Buffer
	tr := telemetry.NewTracer(telemetry.NewJSONL(&buf))
	tr.SetNode(3)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			scheme := fmt.Sprintf("S%d", w)
			for i := 0; i < conns; i++ {
				conn := int64(i)
				trace := telemetry.ConnTrace(scheme, conn)
				tr.ConnRequest(scheme, trace, conn)
				tr.PrimarySetup(scheme, trace, conn, 2)
				tr.BackupRegister(scheme, trace, conn, 3, "")
				tr.ConnEstablish(scheme, trace, conn, 2)
				tr.ConnTeardown(scheme, trace, conn)
			}
		}(w)
	}
	wg.Wait()
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	events, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != workers*conns*perConn {
		t.Fatalf("decoded %d events, want %d", len(events), workers*conns*perConn)
	}
	for _, e := range events {
		if e.Trace == 0 || e.Node != 3 {
			t.Fatalf("event missing span context or node: %+v", e)
		}
	}

	rebuilt := telemetry.BuildTrace(events)
	if len(rebuilt.Spans) != workers*conns {
		t.Fatalf("spans = %d, want %d", len(rebuilt.Spans), workers*conns)
	}
	for _, sp := range rebuilt.Spans {
		if sp.Outcome != "released" || sp.Backups != 1 || len(sp.Events) != perConn {
			t.Fatalf("incomplete span: %+v", sp)
		}
		if sp.Trace != int64(telemetry.ConnTrace(sp.Scheme, sp.Conn)) {
			t.Fatalf("span trace mismatch: %+v", sp)
		}
	}
}
