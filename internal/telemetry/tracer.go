package telemetry

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// EventKind enumerates the typed protocol events the subsystem traces.
type EventKind uint8

const (
	// EvConnEstablish records an accepted DR-connection.
	EvConnEstablish EventKind = iota + 1
	// EvConnReject records a rejected DR-connection request.
	EvConnReject
	// EvBackupRegister records one backup channel registration attempt
	// (Reason is empty on success, "rejected" on a mid-path rejection).
	EvBackupRegister
	// EvBackupRelease records backup registrations released at teardown
	// (N = number of backup channels released).
	EvBackupRelease
	// EvLinkFail records a link declared failed (destructive failure or
	// hello-miss detection).
	EvLinkFail
	// EvBackupActivate records a successful backup activation for a
	// connection whose primary was hit by a failure.
	EvBackupActivate
	// EvActivationDenied records a failed recovery attempt; Reason is one
	// of "no-backup", "backup-hit", "contention", "no-route", "dropped".
	EvActivationDenied
	// EvCDPForward records channel-discovery-packet transmissions of one
	// bounded flood (N = number of CDP copies forwarded).
	EvCDPForward
	// EvCDPDrop records CDP copies discarded during one bounded flood;
	// Reason labels the discarding test ("detour" for the valid-detour
	// test, "hop-limit" for the distance test against hc_limit).
	EvCDPDrop
	// EvLSUpdate records a link-state advertisement flood (N = number of
	// link summaries carried).
	EvLSUpdate
	// EvConnRequest opens a connection's lifecycle span: one per
	// Establish attempt, before any routing or signalling.
	EvConnRequest
	// EvPrimarySetup records the primary channel reserved end-to-end
	// (Hops = primary route length); backup registration follows.
	EvPrimarySetup
	// EvConnTeardown closes a connection's lifecycle span at release.
	EvConnTeardown
	// EvHopSignal records one hop of distributed signalling processed at
	// an intermediate or terminal router (Reason names the signalling
	// role: "primary", "backup", "activate", "teardown"). The hop events
	// of one connection share its trace ID, joining multi-node traces.
	EvHopSignal
	// EvLinkState samples one link's occupancy (Prime/Spare bandwidth
	// units reserved, Mux = backups multiplexed on the spare pool) at an
	// evaluation epoch.
	EvLinkState
	// EvRetry records one retransmission of a signalling round trip after
	// a timeout (Reason names the retried operation: "setup", "activate",
	// "teardown", "failure-report").
	EvRetry
	// EvDedupHit records a duplicate signalling packet absorbed by the
	// idempotent dedup layer at a hop (Reason names the packet role).
	EvDedupHit
	// EvFaultInjected records one fault applied by the chaos layer
	// (Reason names the action: "drop", "dup", "reorder", "delay",
	// "crash", "partition", "edge-fail", "edge-repair").
	EvFaultInjected
	// EvNodeJoin records a node runtime registering with the setup
	// coordinator's registry.
	EvNodeJoin
	// EvNodeLeave records a node leaving the registry (Reason is
	// "heartbeat-miss", "leave" or "drain").
	EvNodeLeave
	// EvHeartbeatMiss records the coordinator declaring a node dead after
	// missing its heartbeats.
	EvHeartbeatMiss
	// EvAdmissionReject records the coordinator refusing a tenant's
	// establishment request (Reason is "quota-conns", "quota-bandwidth",
	// "unknown-node", "draining", "node-down" or "duplicate").
	EvAdmissionReject
	// EvDrainStart records the beginning of a node drain: the node is
	// unschedulable and its connections are being migrated.
	EvDrainStart
	// EvDrainDone records drain completion (N = migrated connections;
	// Hops reused as the dropped count, -1 never).
	EvDrainDone
)

var kindNames = map[EventKind]string{
	EvConnEstablish:    "conn-establish",
	EvConnReject:       "conn-reject",
	EvBackupRegister:   "backup-register",
	EvBackupRelease:    "backup-release",
	EvLinkFail:         "link-fail",
	EvBackupActivate:   "backup-activate",
	EvActivationDenied: "activation-denied",
	EvCDPForward:       "cdp-forward",
	EvCDPDrop:          "cdp-drop",
	EvLSUpdate:         "ls-update",
	EvConnRequest:      "conn-request",
	EvPrimarySetup:     "primary-setup",
	EvConnTeardown:     "conn-teardown",
	EvHopSignal:        "hop-signal",
	EvLinkState:        "link-state",
	EvRetry:            "retry",
	EvDedupHit:         "dedup-hit",
	EvFaultInjected:    "fault-injected",
	EvNodeJoin:         "node-join",
	EvNodeLeave:        "node-leave",
	EvHeartbeatMiss:    "heartbeat-miss",
	EvAdmissionReject:  "admission-reject",
	EvDrainStart:       "drain-start",
	EvDrainDone:        "drain-done",
}

// String returns the kind's stable wire name.
func (k EventKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("unknown-%d", uint8(k))
}

// ParseEventKind maps a wire name back to its kind.
func ParseEventKind(s string) (EventKind, bool) {
	for k, name := range kindNames {
		if name == s {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON encodes the kind as its wire name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("telemetry: bad event kind %s", b)
	}
	kind, ok := ParseEventKind(string(b[1 : len(b)-1]))
	if !ok {
		return fmt.Errorf("telemetry: unknown event kind %s", b)
	}
	*k = kind
	return nil
}

// Event is one structured trace record. Numeric identity fields use -1
// when not applicable so every JSONL line carries the full schema.
type Event struct {
	// T is the trace timestamp: simulated minutes when a simulation
	// installed its clock (Tracer.SetClock), absolute Unix seconds
	// otherwise — so traces written by separate processes merge on a
	// common timeline.
	T float64 `json:"t"`
	// Kind is the event type, serialized as its wire name.
	Kind EventKind `json:"kind"`
	// Conn is the affected DR-connection (-1 when not applicable).
	Conn int64 `json:"conn"`
	// Node is the emitting router's node ID (-1 for centralized runs).
	Node int `json:"node"`
	// Link is the relevant link ID, e.g. the failed link (-1 when not
	// applicable).
	Link int `json:"link"`
	// Hops is the route length in hops (-1 when not applicable).
	Hops int `json:"hops"`
	// N is the event multiplicity (aggregated kinds; at least 1).
	N int `json:"n"`
	// Trace is the connection's span context: a deterministic 53-bit ID
	// (see ConnTrace) shared by every event of one connection's
	// lifecycle, across every router that handles its signalling. Zero
	// for events not tied to a connection span.
	Trace uint64 `json:"trace,omitempty"`
	// Prime and Spare are reserved bandwidth units on Link, and Mux the
	// number of backups multiplexed on its spare pool (EvLinkState only).
	Prime int `json:"prime,omitempty"`
	Spare int `json:"spare,omitempty"`
	Mux   int `json:"mux,omitempty"`
	// Scheme is the routing scheme's name, when known.
	Scheme string `json:"scheme,omitempty"`
	// Reason qualifies rejections, denials, drops and signalling roles.
	Reason string `json:"reason,omitempty"`
	// Tenant is the owning tenant of the affected connection, for events
	// emitted by the multi-tenant control plane.
	Tenant string `json:"tenant,omitempty"`
}

// ConnTrace derives the deterministic trace ID that keys every event of
// one DR-connection's lifecycle span. Each emitter along the signalling
// path could recompute it, but only the connection's source does: routers
// propagate the ID inside the signalling packets so remote hops stamp
// the span context they received, not one they derived (FNV-1a over the
// scheme name and connection ID, masked to 53 bits so the value survives
// JSON number round trips; never zero).
func ConnTrace(scheme string, conn int64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(scheme); i++ {
		h ^= uint64(scheme[i])
		h *= prime64
	}
	for s := uint(0); s < 64; s += 8 {
		h ^= uint64(uint8(conn >> s))
		h *= prime64
	}
	h &= 1<<53 - 1
	if h == 0 {
		h = 1
	}
	return h
}

// Sink receives emitted events. Implementations must be safe for
// concurrent use; Record must not block on slow consumers beyond its own
// writer (the distributed routers emit from their processing loops).
type Sink interface {
	Record(Event)
}

// Null is a Sink that discards everything (useful to keep a tracer
// enabled-shaped in tests without retaining events).
type Null struct{}

// Record implements Sink.
func (Null) Record(Event) {}

// Tracer is the event bus: it stamps events and fans them out to its
// sinks. A nil *Tracer, and a Tracer with no sinks, are no-ops — hot
// paths call the typed emit helpers unconditionally.
type Tracer struct {
	sinks []Sink
	clock atomic.Pointer[func() float64]
	node  atomic.Int64
}

// NewTracer creates a tracer fanning out to the given sinks.
func NewTracer(sinks ...Sink) *Tracer {
	t := &Tracer{sinks: sinks}
	t.node.Store(-1)
	return t
}

// Enabled reports whether emitted events reach at least one sink.
func (t *Tracer) Enabled() bool { return t != nil && len(t.sinks) > 0 }

// SetClock installs the timestamp source (e.g. simulated time). A nil fn
// restores the default wall clock (absolute Unix seconds).
func (t *Tracer) SetClock(fn func() float64) {
	if t == nil {
		return
	}
	if fn == nil {
		t.clock.Store(nil)
		return
	}
	t.clock.Store(&fn)
}

// SetNode installs a default node ID stamped onto events emitted without
// one (Node < 0). Single-router processes such as cmd/drtpnode use it so
// their source-side events are attributable in merged multi-node traces.
func (t *Tracer) SetNode(node int) {
	if t == nil {
		return
	}
	t.node.Store(int64(node))
}

func (t *Tracer) now() float64 {
	if fn := t.clock.Load(); fn != nil {
		return (*fn)()
	}
	return float64(time.Now().UnixNano()) / 1e9
}

// Emit stamps the event with the tracer clock and records it in every
// sink. Events with zero multiplicity are normalized to N=1.
func (t *Tracer) Emit(e Event) {
	if !t.Enabled() {
		return
	}
	e.T = t.now()
	if e.N < 1 {
		e.N = 1
	}
	if e.Node < 0 {
		if n := t.node.Load(); n >= 0 {
			e.Node = int(n)
		}
	}
	for _, s := range t.sinks {
		s.Record(e)
	}
}

// Forward records an already-stamped event in every sink without
// touching its timestamp or default node: the replay path for event
// streams captured in a Buffer during a concurrent experiment cell and
// merged into the shared sinks in deterministic cell order.
func (t *Tracer) Forward(e Event) {
	if !t.Enabled() {
		return
	}
	if e.N < 1 {
		e.N = 1
	}
	for _, s := range t.sinks {
		s.Record(e)
	}
}

// BatchSink is an optional Sink extension: RecordBatch records a slice of
// already-stamped events, preserving order, under one lock acquisition.
// ForwardBatch uses it when a sink provides it.
type BatchSink interface {
	Sink
	// RecordBatch records the events in order. The slice is only valid
	// for the duration of the call; retaining sinks must copy.
	RecordBatch([]Event)
}

// ForwardBatch is Forward for a whole cell's event stream: it records the
// already-stamped events in every sink, in order, normalizing
// multiplicities in place (so the caller must own the slice). Sinks
// implementing BatchSink take the slice in one call — one lock
// acquisition per cell instead of one per event — and the rest receive
// per-event Record calls, with byte-identical results either way.
func (t *Tracer) ForwardBatch(events []Event) {
	if !t.Enabled() || len(events) == 0 {
		return
	}
	for i := range events {
		if events[i].N < 1 {
			events[i].N = 1
		}
	}
	for _, s := range t.sinks {
		if bs, ok := s.(BatchSink); ok {
			bs.RecordBatch(events)
			continue
		}
		for _, e := range events {
			s.Record(e)
		}
	}
}

// Close closes every sink that implements io.Closer (flushing buffered
// writers), returning the first error.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if c, ok := s.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// --- typed emit helpers ------------------------------------------------
//
// Each helper takes scalar arguments so that the disabled path costs one
// nil/len check and no Event construction. Connection-scoped helpers
// take the span's trace ID (ConnTrace; zero when the caller has none).

// ConnRequest opens the connection's lifecycle span: one per Establish
// attempt, emitted before routing or signalling starts.
func (t *Tracer) ConnRequest(scheme string, trace uint64, conn int64) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvConnRequest, Conn: conn, Node: -1, Link: -1, Hops: -1,
		Trace: trace, Scheme: scheme})
}

// PrimarySetup records the primary channel reserved end-to-end.
func (t *Tracer) PrimarySetup(scheme string, trace uint64, conn int64, hops int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvPrimarySetup, Conn: conn, Node: -1, Link: -1,
		Hops: hops, Trace: trace, Scheme: scheme})
}

// ConnEstablish records an accepted connection with its primary length;
// the connection's backup channels appear as BackupRegister events.
func (t *Tracer) ConnEstablish(scheme string, trace uint64, conn int64, primaryHops int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvConnEstablish, Conn: conn, Node: -1, Link: -1,
		Hops: primaryHops, Trace: trace, Scheme: scheme})
}

// ConnReject records a rejected request.
func (t *Tracer) ConnReject(scheme string, trace uint64, conn int64, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvConnReject, Conn: conn, Node: -1, Link: -1, Hops: -1,
		Trace: trace, Scheme: scheme, Reason: reason})
}

// BackupRegister records one backup registration attempt; reason is
// empty on success.
func (t *Tracer) BackupRegister(scheme string, trace uint64, conn int64, hops int, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvBackupRegister, Conn: conn, Node: -1, Link: -1,
		Hops: hops, Trace: trace, Scheme: scheme, Reason: reason})
}

// BackupRelease records n backup channels released at teardown.
func (t *Tracer) BackupRelease(scheme string, trace uint64, conn int64, n int) {
	if !t.Enabled() || n <= 0 {
		return
	}
	t.Emit(Event{Kind: EvBackupRelease, Conn: conn, Node: -1, Link: -1,
		Hops: -1, N: n, Trace: trace, Scheme: scheme})
}

// ConnTeardown closes the connection's lifecycle span at release.
func (t *Tracer) ConnTeardown(scheme string, trace uint64, conn int64) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvConnTeardown, Conn: conn, Node: -1, Link: -1, Hops: -1,
		Trace: trace, Scheme: scheme})
}

// LinkFail records link l declared failed; node is the detecting router
// (-1 for centralized failure injection).
func (t *Tracer) LinkFail(node, link int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvLinkFail, Conn: -1, Node: node, Link: link, Hops: -1})
}

// BackupActivate records a successful backup activation for conn after
// the failure of link (which may be -1 when unknown, e.g. edge bundles).
// reason distinguishes evaluation sweeps (empty), reactive re-routes
// ("reactive") and destructive channel switches ("switch", "reroute").
func (t *Tracer) BackupActivate(scheme string, trace uint64, conn int64, link int, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvBackupActivate, Conn: conn, Node: -1, Link: link,
		Hops: -1, Trace: trace, Scheme: scheme, Reason: reason})
}

// ActivationDenied records a failed recovery attempt for conn.
func (t *Tracer) ActivationDenied(scheme string, trace uint64, conn int64, link int, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvActivationDenied, Conn: conn, Node: -1, Link: link,
		Hops: -1, Trace: trace, Scheme: scheme, Reason: reason})
}

// HopSignal records one hop of distributed signalling handled at node:
// role names the packet ("primary", "backup", "activate", "teardown"),
// link the out-link reserved/released there (-1 at a route's terminus).
func (t *Tracer) HopSignal(trace uint64, conn int64, node, link int, role string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvHopSignal, Conn: conn, Node: node, Link: link, Hops: -1,
		Trace: trace, Reason: role})
}

// CDPForward records n CDP transmissions of one bounded flood.
func (t *Tracer) CDPForward(scheme string, trace uint64, conn int64, n int) {
	if !t.Enabled() || n <= 0 {
		return
	}
	t.Emit(Event{Kind: EvCDPForward, Conn: conn, Node: -1, Link: -1, Hops: -1,
		N: n, Trace: trace, Scheme: scheme})
}

// CDPDrop records n CDP copies discarded during one flood; reason labels
// the discarding test ("detour" or "hop-limit").
func (t *Tracer) CDPDrop(scheme string, trace uint64, conn int64, n int, reason string) {
	if !t.Enabled() || n <= 0 {
		return
	}
	t.Emit(Event{Kind: EvCDPDrop, Conn: conn, Node: -1, Link: -1, Hops: -1,
		N: n, Trace: trace, Scheme: scheme, Reason: reason})
}

// LSUpdate records a link-state advertisement flood from node carrying n
// link summaries.
func (t *Tracer) LSUpdate(node, n int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvLSUpdate, Conn: -1, Node: node, Link: -1, Hops: -1, N: n})
}

// LinkState samples link occupancy at an evaluation epoch: prime/spare
// reserved bandwidth units and the number of multiplexed backups.
func (t *Tracer) LinkState(scheme string, link, prime, spare, mux int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvLinkState, Conn: -1, Node: -1, Link: link, Hops: -1,
		Prime: prime, Spare: spare, Mux: mux, Scheme: scheme})
}

// Retry records one retransmission of a signalling round trip for conn:
// op names the retried operation ("setup", "activate", "teardown",
// "failure-report").
func (t *Tracer) Retry(scheme string, trace uint64, conn int64, op string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvRetry, Conn: conn, Node: -1, Link: -1, Hops: -1,
		Trace: trace, Scheme: scheme, Reason: op})
}

// DedupHit records a duplicate signalling packet absorbed at node; role
// names the packet ("primary", "backup", "activate", "teardown").
func (t *Tracer) DedupHit(trace uint64, conn int64, node int, role string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvDedupHit, Conn: conn, Node: node, Link: -1, Hops: -1,
		Trace: trace, Reason: role})
}

// NodeJoin records a node runtime registering with the coordinator.
func (t *Tracer) NodeJoin(node int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvNodeJoin, Conn: -1, Node: node, Link: -1, Hops: -1})
}

// NodeLeave records a node leaving the registry; reason is
// "heartbeat-miss", "leave" or "drain".
func (t *Tracer) NodeLeave(node int, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvNodeLeave, Conn: -1, Node: node, Link: -1, Hops: -1,
		Reason: reason})
}

// HeartbeatMiss records the coordinator declaring a node dead after
// missed heartbeats.
func (t *Tracer) HeartbeatMiss(node int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvHeartbeatMiss, Conn: -1, Node: node, Link: -1, Hops: -1})
}

// AdmissionReject records the coordinator refusing a tenant's request.
func (t *Tracer) AdmissionReject(tenant string, conn int64, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvAdmissionReject, Conn: conn, Node: -1, Link: -1,
		Hops: -1, Tenant: tenant, Reason: reason})
}

// DrainStart records the beginning of a node drain.
func (t *Tracer) DrainStart(node int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvDrainStart, Conn: -1, Node: node, Link: -1, Hops: -1})
}

// DrainDone records drain completion with the number of migrated and
// dropped connections.
func (t *Tracer) DrainDone(node, migrated, dropped int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvDrainDone, Conn: -1, Node: node, Link: -1, Hops: dropped,
		N: migrated})
}

// FaultInjected records one fault applied by the chaos layer: action
// names it ("drop", "dup", "reorder", "delay", "crash", "partition",
// "edge-fail", "edge-repair"), node is the sending/affected node (-1
// when not applicable), link the affected link or edge (-1 likewise),
// and conn the affected connection when the faulted packet carries one.
func (t *Tracer) FaultInjected(node, link int, conn int64, action string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvFaultInjected, Conn: conn, Node: node, Link: link,
		Hops: -1, Reason: action})
}
