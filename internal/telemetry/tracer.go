package telemetry

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"
)

// EventKind enumerates the typed protocol events the subsystem traces.
type EventKind uint8

const (
	// EvConnEstablish records an accepted DR-connection.
	EvConnEstablish EventKind = iota + 1
	// EvConnReject records a rejected DR-connection request.
	EvConnReject
	// EvBackupRegister records one backup channel registration attempt
	// (Reason is empty on success, "rejected" on a mid-path rejection).
	EvBackupRegister
	// EvBackupRelease records backup registrations released at teardown
	// (N = number of backup channels released).
	EvBackupRelease
	// EvLinkFail records a link declared failed (destructive failure or
	// hello-miss detection).
	EvLinkFail
	// EvBackupActivate records a successful backup activation for a
	// connection whose primary was hit by a failure.
	EvBackupActivate
	// EvActivationDenied records a failed recovery attempt; Reason is one
	// of "no-backup", "backup-hit", "contention", "no-route", "dropped".
	EvActivationDenied
	// EvCDPForward records channel-discovery-packet transmissions of one
	// bounded flood (N = number of CDP copies forwarded).
	EvCDPForward
	// EvCDPDrop records CDP copies dropped by the valid-detour test
	// during one bounded flood (N = number of drops).
	EvCDPDrop
	// EvLSUpdate records a link-state advertisement flood (N = number of
	// link summaries carried).
	EvLSUpdate
)

var kindNames = map[EventKind]string{
	EvConnEstablish:    "conn-establish",
	EvConnReject:       "conn-reject",
	EvBackupRegister:   "backup-register",
	EvBackupRelease:    "backup-release",
	EvLinkFail:         "link-fail",
	EvBackupActivate:   "backup-activate",
	EvActivationDenied: "activation-denied",
	EvCDPForward:       "cdp-forward",
	EvCDPDrop:          "cdp-drop",
	EvLSUpdate:         "ls-update",
}

// String returns the kind's stable wire name.
func (k EventKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("unknown-%d", uint8(k))
}

// ParseEventKind maps a wire name back to its kind.
func ParseEventKind(s string) (EventKind, bool) {
	for k, name := range kindNames {
		if name == s {
			return k, true
		}
	}
	return 0, false
}

// MarshalJSON encodes the kind as its wire name.
func (k EventKind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON decodes a wire name.
func (k *EventKind) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("telemetry: bad event kind %s", b)
	}
	kind, ok := ParseEventKind(string(b[1 : len(b)-1]))
	if !ok {
		return fmt.Errorf("telemetry: unknown event kind %s", b)
	}
	*k = kind
	return nil
}

// Event is one structured trace record. Numeric identity fields use -1
// when not applicable so every JSONL line carries the full schema.
type Event struct {
	// T is the trace timestamp: simulated minutes when a simulation
	// installed its clock (Tracer.SetClock), wall seconds since tracer
	// creation otherwise.
	T float64 `json:"t"`
	// Kind is the event type, serialized as its wire name.
	Kind EventKind `json:"kind"`
	// Conn is the affected DR-connection (-1 when not applicable).
	Conn int64 `json:"conn"`
	// Node is the emitting router's node ID (-1 for centralized runs).
	Node int `json:"node"`
	// Link is the relevant link ID, e.g. the failed link (-1 when not
	// applicable).
	Link int `json:"link"`
	// Hops is the route length in hops (-1 when not applicable).
	Hops int `json:"hops"`
	// N is the event multiplicity (aggregated kinds; at least 1).
	N int `json:"n"`
	// Scheme is the routing scheme's name, when known.
	Scheme string `json:"scheme,omitempty"`
	// Reason qualifies rejections and denials.
	Reason string `json:"reason,omitempty"`
}

// Sink receives emitted events. Implementations must be safe for
// concurrent use; Record must not block on slow consumers beyond its own
// writer (the distributed routers emit from their processing loops).
type Sink interface {
	Record(Event)
}

// Null is a Sink that discards everything (useful to keep a tracer
// enabled-shaped in tests without retaining events).
type Null struct{}

// Record implements Sink.
func (Null) Record(Event) {}

// Tracer is the event bus: it stamps events and fans them out to its
// sinks. A nil *Tracer, and a Tracer with no sinks, are no-ops — hot
// paths call the typed emit helpers unconditionally.
type Tracer struct {
	sinks []Sink
	start time.Time
	clock atomic.Pointer[func() float64]
}

// NewTracer creates a tracer fanning out to the given sinks.
func NewTracer(sinks ...Sink) *Tracer {
	return &Tracer{sinks: sinks, start: time.Now()}
}

// Enabled reports whether emitted events reach at least one sink.
func (t *Tracer) Enabled() bool { return t != nil && len(t.sinks) > 0 }

// SetClock installs the timestamp source (e.g. simulated time). A nil fn
// restores the default wall clock (seconds since tracer creation).
func (t *Tracer) SetClock(fn func() float64) {
	if t == nil {
		return
	}
	if fn == nil {
		t.clock.Store(nil)
		return
	}
	t.clock.Store(&fn)
}

func (t *Tracer) now() float64 {
	if fn := t.clock.Load(); fn != nil {
		return (*fn)()
	}
	return time.Since(t.start).Seconds()
}

// Emit stamps the event with the tracer clock and records it in every
// sink. Events with zero multiplicity are normalized to N=1.
func (t *Tracer) Emit(e Event) {
	if !t.Enabled() {
		return
	}
	e.T = t.now()
	if e.N < 1 {
		e.N = 1
	}
	for _, s := range t.sinks {
		s.Record(e)
	}
}

// Close closes every sink that implements io.Closer (flushing buffered
// writers), returning the first error.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	var first error
	for _, s := range t.sinks {
		if c, ok := s.(io.Closer); ok {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// --- typed emit helpers ------------------------------------------------
//
// Each helper takes scalar arguments so that the disabled path costs one
// nil/len check and no Event construction.

// ConnEstablish records an accepted connection with its primary length;
// the connection's backup channels appear as BackupRegister events.
func (t *Tracer) ConnEstablish(scheme string, conn int64, primaryHops int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvConnEstablish, Conn: conn, Node: -1, Link: -1,
		Hops: primaryHops, Scheme: scheme})
}

// ConnReject records a rejected request.
func (t *Tracer) ConnReject(scheme string, conn int64, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvConnReject, Conn: conn, Node: -1, Link: -1, Hops: -1,
		Scheme: scheme, Reason: reason})
}

// BackupRegister records one backup registration attempt; reason is
// empty on success.
func (t *Tracer) BackupRegister(scheme string, conn int64, hops int, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvBackupRegister, Conn: conn, Node: -1, Link: -1,
		Hops: hops, Scheme: scheme, Reason: reason})
}

// BackupRelease records n backup channels released at teardown.
func (t *Tracer) BackupRelease(scheme string, conn int64, n int) {
	if !t.Enabled() || n <= 0 {
		return
	}
	t.Emit(Event{Kind: EvBackupRelease, Conn: conn, Node: -1, Link: -1,
		Hops: -1, N: n, Scheme: scheme})
}

// LinkFail records link l declared failed; node is the detecting router
// (-1 for centralized failure injection).
func (t *Tracer) LinkFail(node, link int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvLinkFail, Conn: -1, Node: node, Link: link, Hops: -1})
}

// BackupActivate records a successful backup activation for conn after
// the failure of link (which may be -1 when unknown, e.g. edge bundles).
// reason distinguishes evaluation sweeps (empty), reactive re-routes
// ("reactive") and destructive channel switches ("switch").
func (t *Tracer) BackupActivate(scheme string, conn int64, link int, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvBackupActivate, Conn: conn, Node: -1, Link: link,
		Hops: -1, Scheme: scheme, Reason: reason})
}

// ActivationDenied records a failed recovery attempt for conn.
func (t *Tracer) ActivationDenied(scheme string, conn int64, link int, reason string) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvActivationDenied, Conn: conn, Node: -1, Link: link,
		Hops: -1, Scheme: scheme, Reason: reason})
}

// CDPForward records n CDP transmissions of one bounded flood.
func (t *Tracer) CDPForward(scheme string, conn int64, n int) {
	if !t.Enabled() || n <= 0 {
		return
	}
	t.Emit(Event{Kind: EvCDPForward, Conn: conn, Node: -1, Link: -1, Hops: -1,
		N: n, Scheme: scheme})
}

// CDPDrop records n CDP copies dropped by the valid-detour test.
func (t *Tracer) CDPDrop(scheme string, conn int64, n int) {
	if !t.Enabled() || n <= 0 {
		return
	}
	t.Emit(Event{Kind: EvCDPDrop, Conn: conn, Node: -1, Link: -1, Hops: -1,
		N: n, Scheme: scheme})
}

// LSUpdate records a link-state advertisement flood from node carrying n
// link summaries.
func (t *Tracer) LSUpdate(node, n int) {
	if !t.Enabled() {
		return
	}
	t.Emit(Event{Kind: EvLSUpdate, Conn: -1, Node: node, Link: -1, Hops: -1, N: n})
}
