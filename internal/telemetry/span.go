package telemetry

import (
	"sort"
)

// ConnSpan is one DR-connection's reconstructed lifecycle: the phase
// timestamps of request → primary setup → backup registration → active →
// (switch | teardown | drop), joined across every node that emitted
// events for the connection's trace ID. Timestamps are -1 when the phase
// never occurred.
type ConnSpan struct {
	Trace  int64  `json:"trace"`
	Conn   int64  `json:"conn"`
	Scheme string `json:"scheme"`
	// Outcome summarizes the span: "active", "released", "switched",
	// "dropped", "rejected", or "pending" (span never completed).
	Outcome string `json:"outcome"`

	RequestT  float64 `json:"request_t"`
	SetupT    float64 `json:"setup_t"`
	RegisterT float64 `json:"register_t"`
	ActiveT   float64 `json:"active_t"`
	RejectT   float64 `json:"reject_t"`
	SwitchT   float64 `json:"switch_t"`
	DropT     float64 `json:"drop_t"`
	TeardownT float64 `json:"teardown_t"`

	// Backups counts successful backup registrations; Recovered/Denied
	// tally the evaluation-sweep outcomes that referenced this span.
	Backups   int   `json:"backups"`
	Recovered int64 `json:"recovered"`
	Denied    int64 `json:"denied"`

	// Nodes lists the distinct router nodes that emitted events for this
	// span — a multi-node deployment yields more than one entry here.
	Nodes []int `json:"nodes,omitempty"`

	// Events is the span's raw event sequence in timeline order.
	Events []Event `json:"-"`
}

// RecoveryOutcome is one affected connection's fate after a failure.
type RecoveryOutcome struct {
	Trace     int64   `json:"trace"`
	Conn      int64   `json:"conn"`
	Scheme    string  `json:"scheme"`
	Recovered bool    `json:"recovered"`
	Reason    string  `json:"reason,omitempty"`
	T         float64 `json:"t"`
	// Disruption is the service-disruption time: the interval from the
	// link-failure event to this connection's activation (or denial).
	Disruption float64 `json:"disruption"`
}

// RecoverySpan links one EvLinkFail to the per-connection outcomes it
// forced (destructive switches/re-routes and drops; evaluation-sweep
// probes accumulate on the ConnSpans instead).
type RecoverySpan struct {
	Link     int               `json:"link"`
	Node     int               `json:"node"`
	FailT    float64           `json:"fail_t"`
	Outcomes []RecoveryOutcome `json:"outcomes,omitempty"`
}

// Trace is a reconstructed set of spans built from one or more event
// streams (BuildTrace). Multi-file inputs merge on the event timestamps.
type Trace struct {
	Spans      []*ConnSpan     `json:"spans"`
	Recoveries []*RecoverySpan `json:"recoveries"`
	// LinkStates keeps the raw occupancy samples for occupancy reports.
	LinkStates []Event `json:"-"`
	// Faults keeps the raw chaos-layer fault events (fault-injected) for
	// the report's per-action tally; they carry no connection context.
	Faults []Event `json:"-"`
	// Total is the number of events consumed.
	Total int `json:"total_events"`
}

// spanKey identifies a lifecycle span: the propagated trace ID when the
// emitter carried one, else a per-(scheme,conn) synthetic key so legacy
// traces without span context still reconstruct.
func spanKey(e Event) uint64 {
	if e.Trace != 0 {
		return e.Trace
	}
	return ConnTrace(e.Scheme, e.Conn)
}

// destructiveOutcome reports whether an activate/denied event is a
// destructive recovery outcome (joined to a RecoverySpan) rather than an
// evaluation-sweep probe. Activations use "switch"/"reroute"; sweeps use
// ""/"reactive". Denials use "dropped"; sweeps use the analysis reasons.
func destructiveOutcome(e Event) bool {
	switch e.Kind {
	case EvBackupActivate:
		return e.Reason == "switch" || e.Reason == "reroute"
	case EvActivationDenied:
		return e.Reason == "dropped"
	}
	return false
}

// BuildTrace reconstructs connection and recovery spans from raw events.
// Events may come from several files (several processes); they are
// stably sorted by timestamp first, so per-file ordering breaks ties.
func BuildTrace(events []Event) *Trace {
	sorted := make([]Event, len(events))
	copy(sorted, events)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].T < sorted[j].T })

	tr := &Trace{Total: len(sorted)}
	open := make(map[uint64]*ConnSpan)
	// Recovery spans: latest open span per link; -1 keyed entry tracks
	// the most recent failure overall, for outcomes with no link (edge
	// failures report link=-1 on the denial path).
	recByLink := make(map[int]*RecoverySpan)
	var lastRec *RecoverySpan

	span := func(e Event) *ConnSpan {
		k := spanKey(e)
		s := open[k]
		if s == nil {
			s = newConnSpan(e)
			open[k] = s
			tr.Spans = append(tr.Spans, s)
		}
		if s.Scheme == "" {
			s.Scheme = e.Scheme
		}
		return s
	}

	for _, e := range sorted {
		switch e.Kind {
		case EvLinkState:
			tr.LinkStates = append(tr.LinkStates, e)
			continue
		case EvLSUpdate:
			continue
		case EvLinkFail:
			r := &RecoverySpan{Link: e.Link, Node: e.Node, FailT: e.T}
			tr.Recoveries = append(tr.Recoveries, r)
			recByLink[e.Link] = r
			lastRec = r
			continue
		case EvFaultInjected:
			tr.Faults = append(tr.Faults, e)
			continue
		case EvRetry, EvDedupHit:
			// Join an already-open span only: a duplicate absorbed after
			// teardown must not resurrect the span as "pending".
			if s := open[spanKey(e)]; s != nil {
				s.observe(e)
			}
			continue
		}
		if e.Conn < 0 {
			continue
		}

		switch e.Kind {
		case EvConnRequest:
			// A request on an already-open key means the conn ID was
			// reused (a later simulation cell): close the old span.
			k := spanKey(e)
			if old := open[k]; old != nil {
				delete(open, k)
			}
			s := newConnSpan(e)
			open[k] = s
			tr.Spans = append(tr.Spans, s)
			s.RequestT = e.T
			s.observe(e)
			continue
		}

		s := span(e)
		s.observe(e)
		switch e.Kind {
		case EvPrimarySetup:
			s.SetupT = e.T
		case EvBackupRegister:
			if e.Reason == "" {
				s.Backups++
				if s.RegisterT < 0 {
					s.RegisterT = e.T
				}
			}
		case EvConnEstablish:
			s.ActiveT = e.T
		case EvConnReject:
			s.RejectT = e.T
		case EvBackupActivate:
			if destructiveOutcome(e) {
				s.SwitchT = e.T
				joinRecovery(recByLink, lastRec, e, true)
			} else {
				s.Recovered += int64(e.N)
			}
		case EvActivationDenied:
			if destructiveOutcome(e) {
				s.DropT = e.T
				joinRecovery(recByLink, lastRec, e, false)
			} else {
				s.Denied += int64(e.N)
			}
		case EvConnTeardown:
			s.TeardownT = e.T
			delete(open, spanKey(e))
		}
	}

	for _, s := range tr.Spans {
		s.finish()
	}
	return tr
}

func newConnSpan(e Event) *ConnSpan {
	return &ConnSpan{
		Trace: int64(spanKey(e)), Conn: e.Conn, Scheme: e.Scheme,
		RequestT: -1, SetupT: -1, RegisterT: -1, ActiveT: -1, RejectT: -1,
		SwitchT: -1, DropT: -1, TeardownT: -1,
	}
}

// observe appends the event and tracks the emitting node.
func (s *ConnSpan) observe(e Event) {
	s.Events = append(s.Events, e)
	if e.Node >= 0 {
		for _, n := range s.Nodes {
			if n == e.Node {
				return
			}
		}
		s.Nodes = append(s.Nodes, e.Node)
	}
}

// finish derives the span outcome once all events are in.
func (s *ConnSpan) finish() {
	sort.Ints(s.Nodes)
	switch {
	case s.DropT >= 0:
		s.Outcome = "dropped"
	case s.RejectT >= 0 && s.ActiveT < 0:
		s.Outcome = "rejected"
	case s.TeardownT >= 0:
		s.Outcome = "released"
	case s.SwitchT >= 0:
		s.Outcome = "switched"
	case s.ActiveT >= 0:
		s.Outcome = "active"
	default:
		s.Outcome = "pending"
	}
}

// joinRecovery attaches a destructive outcome to the recovery span of
// the failed link; outcomes that carry no link (edge-bundle drops)
// attach to the most recent failure.
func joinRecovery(recByLink map[int]*RecoverySpan, lastRec *RecoverySpan, e Event, recovered bool) {
	var r *RecoverySpan
	if e.Link >= 0 {
		r = recByLink[e.Link]
	}
	if r == nil {
		r = lastRec
	}
	if r == nil {
		return
	}
	r.Outcomes = append(r.Outcomes, RecoveryOutcome{
		Trace: int64(spanKey(e)), Conn: e.Conn, Scheme: e.Scheme,
		Recovered: recovered, Reason: e.Reason, T: e.T,
		Disruption: e.T - r.FailT,
	})
}
