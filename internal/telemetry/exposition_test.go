package telemetry_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/rtcl/drtp/internal/telemetry"
)

func exposition(t *testing.T, reg *telemetry.Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestExpositionLabelEscaping checks the text-format escaping of label
// values: backslashes, double quotes and newlines must be escaped, and
// untouched values must round-trip verbatim.
func TestExpositionLabelEscaping(t *testing.T) {
	reg := telemetry.NewRegistry()
	cv := reg.CounterVec("test_escape_total", "escaping", "path")
	cv.With(`C:\drtp "trace"` + "\nfile").Inc()
	cv.With("plain").Add(2)

	out := exposition(t, reg)
	want := `test_escape_total{path="C:\\drtp \"trace\"\nfile"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("escaped series missing.\nwant line: %s\ngot:\n%s", want, out)
	}
	if !strings.Contains(out, `test_escape_total{path="plain"} 2`) {
		t.Fatalf("plain series missing:\n%s", out)
	}
	// The escaped value must not leak a raw newline into the body: every
	// line of the output is either a comment or name{labels} value.
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("raw newline leaked into exposition:\n%q", out)
		}
	}
}

// TestExpositionHistogramInfBucket checks the +Inf overflow bucket line:
// it is always last, cumulative, and equals the _count series.
func TestExpositionHistogramInfBucket(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("test_lat_seconds", "latency", []float64{0.1, 1})
	// Power-of-two fractions keep the sum exact in binary floating point.
	for _, v := range []float64{0.0625, 0.5, 99, 100} { // two above the top bound
		h.Observe(v)
	}

	out := exposition(t, reg)
	for _, want := range []string{
		`test_lat_seconds_bucket{le="0.1"} 1`,
		`test_lat_seconds_bucket{le="1"} 2`,
		`test_lat_seconds_bucket{le="+Inf"} 4`,
		`test_lat_seconds_count 4`,
		`test_lat_seconds_sum 199.5625`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative ordering: +Inf is the last bucket line.
	lines := strings.Split(out, "\n")
	lastBucket := ""
	for _, l := range lines {
		if strings.HasPrefix(l, "test_lat_seconds_bucket") {
			lastBucket = l
		}
	}
	if !strings.Contains(lastBucket, `le="+Inf"`) {
		t.Fatalf("+Inf bucket not last: %q", lastBucket)
	}
}

// TestExpositionEmptyHistogram: a registered unlabeled histogram with no
// observations still prints its full (all-zero) bucket set — scrapers
// need the series to exist before the first sample — while a labeled
// family with no children prints nothing at all.
func TestExpositionEmptyHistogram(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Histogram("test_idle_seconds", "never observed", []float64{1, 2})
	reg.HistogramVec("test_empty_vec_seconds", "no children", []float64{1}, "scheme")
	reg.CounterVec("test_empty_counter_total", "no children", "scheme")

	out := exposition(t, reg)
	for _, want := range []string{
		"# TYPE test_idle_seconds histogram",
		`test_idle_seconds_bucket{le="1"} 0`,
		`test_idle_seconds_bucket{le="2"} 0`,
		`test_idle_seconds_bucket{le="+Inf"} 0`,
		"test_idle_seconds_sum 0",
		"test_idle_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	for _, absent := range []string{"test_empty_vec_seconds", "test_empty_counter_total"} {
		if strings.Contains(out, absent) {
			t.Fatalf("family %s with no children was exposed:\n%s", absent, out)
		}
	}
}

// TestExpositionHistogramVecLabels: bucket lines of a labeled histogram
// carry both the family labels and the le bound, le last.
func TestExpositionHistogramVecLabels(t *testing.T) {
	reg := telemetry.NewRegistry()
	hv := reg.HistogramVec("test_hops_bytes", "route lengths", []float64{2}, "scheme")
	hv.With("D-LSR").Observe(1)
	hv.With("D-LSR").Observe(5)

	out := exposition(t, reg)
	for _, want := range []string{
		`test_hops_bytes_bucket{scheme="D-LSR",le="2"} 1`,
		`test_hops_bytes_bucket{scheme="D-LSR",le="+Inf"} 2`,
		`test_hops_bytes_sum{scheme="D-LSR"} 6`,
		`test_hops_bytes_count{scheme="D-LSR"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
