package telemetry

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// gatedWriter blocks every Write until the gate is released, signalling
// entry so tests can stall the sink's writer goroutine deterministically.
type gatedWriter struct {
	entered chan struct{}
	gate    chan struct{}
	once    sync.Once
	buf     bytes.Buffer
	mu      sync.Mutex
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{entered: make(chan struct{}), gate: make(chan struct{})}
}

func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.entered) })
	<-g.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.buf.Write(p)
}

func streamEvent(i int) Event {
	return Event{T: float64(i), Kind: EvConnEstablish, Conn: int64(i), Node: 0, Scheme: "D-LSR", Hops: 3}
}

// TestStreamSinkNeverBlocks stalls the writer goroutine behind a gated
// Write and floods the queue: every Record must return promptly, the
// overflow must be counted exactly, and nothing may be lost silently —
// written + dropped == recorded once the gate opens and the sink closes.
func TestStreamSinkNeverBlocks(t *testing.T) {
	const queue = 64
	gw := newGatedWriter()
	reg := NewRegistry()
	sink := NewStreamSink(gw, queue, reg)

	// One event, then idle: the writer goroutine flushes and blocks in
	// the gated Write with the queue empty.
	sink.Record(streamEvent(0))
	select {
	case <-gw.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("writer goroutine never reached the underlying writer")
	}

	// With the writer stalled, exactly `queue` events fit; the rest must
	// drop without blocking. The recording loop is timed via the test
	// timeout: a blocking Record would hang here forever.
	const flood = queue + 100
	for i := 1; i <= flood; i++ {
		sink.Record(streamEvent(i))
	}
	if got := sink.Dropped(); got != 100 {
		t.Errorf("Dropped() = %d, want exactly 100", got)
	}

	close(gw.gate)
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := sink.Written(), int64(1+queue); got != want {
		t.Errorf("Written() = %d, want %d", got, want)
	}
	if got, want := sink.Written()+sink.Dropped(), int64(1+flood); got != want {
		t.Errorf("written %d + dropped %d = %d, want %d (every Record accounted for)",
			sink.Written(), sink.Dropped(), got, want)
	}

	// The loss is visible on the registry, not just the sink handle.
	var expo strings.Builder
	if err := reg.WritePrometheus(&expo); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"drtp_telemetry_stream_dropped_total 100",
		fmt.Sprintf("drtp_telemetry_stream_written_total %d", 1+queue),
	} {
		if !strings.Contains(expo.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, expo.String())
		}
	}
}

// TestStreamSinkLosslessBackpressure stalls the writer behind the gate
// and floods a lossless sink with far more events than its queue holds
// from a separate goroutine: Record must block (backpressure) instead
// of dropping, and once the gate opens every single event must come out
// byte-identical to the plain JSONL sink — the contract drtpsim's
// trace-reconciliation and golden tests depend on.
func TestStreamSinkLosslessBackpressure(t *testing.T) {
	const queue, flood = 8, 5000
	gw := newGatedWriter()
	sink := NewLosslessStreamSink(gw, queue, nil)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < flood; i++ {
			sink.Record(streamEvent(i))
		}
	}()

	// The producer must stall on the full queue while the writer is
	// gated, not finish by discarding.
	select {
	case <-gw.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("writer goroutine never reached the underlying writer")
	}
	select {
	case <-done:
		t.Fatalf("producer finished against a gated writer with a %d-slot queue (events discarded?)", queue)
	case <-time.After(50 * time.Millisecond):
	}

	close(gw.gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("producer never unblocked after the gate opened")
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.Dropped(); got != 0 {
		t.Errorf("Dropped() = %d, want 0 from a lossless sink", got)
	}
	if got := sink.Written(); got != flood {
		t.Errorf("Written() = %d, want %d", got, flood)
	}

	var want bytes.Buffer
	ref := NewJSONL(&want)
	for i := 0; i < flood; i++ {
		ref.Record(streamEvent(i))
	}
	if err := ref.Close(); err != nil {
		t.Fatal(err)
	}
	gw.mu.Lock()
	got := gw.buf.Bytes()
	gw.mu.Unlock()
	if !bytes.Equal(got, want.Bytes()) {
		t.Errorf("lossless stream bytes differ from plain JSONL (%d vs %d bytes)", len(got), len(want.Bytes()))
	}
}

// TestStreamSinkMatchesJSONL asserts the zero-overflow guarantee: fed
// the same event sequence from one producer, the streaming sink's bytes
// equal the plain buffered JSONL sink's bytes exactly.
func TestStreamSinkMatchesJSONL(t *testing.T) {
	const n = 5000
	var plain bytes.Buffer
	jl := NewJSONL(&plain)
	for i := 0; i < n; i++ {
		jl.Record(streamEvent(i))
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	var streamed bytes.Buffer
	sink := NewStreamSink(&streamed, n, nil)
	for i := 0; i < n; i++ {
		sink.Record(streamEvent(i))
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Dropped() != 0 {
		t.Fatalf("dropped %d events with a queue sized for the whole run", sink.Dropped())
	}
	if !bytes.Equal(plain.Bytes(), streamed.Bytes()) {
		t.Errorf("streamed bytes differ from buffered JSONL bytes (%d vs %d bytes)",
			streamed.Len(), plain.Len())
	}
}

// TestStreamSinkConcurrentProducers hammers Record from many goroutines
// (run under -race): with a queue sized for the load nothing drops, every
// event round-trips through ReadJSONL, and each producer's events keep
// their relative order in the output.
func TestStreamSinkConcurrentProducers(t *testing.T) {
	const (
		producers = 8
		perProd   = 2000
	)
	var out bytes.Buffer
	sink := NewStreamSink(&out, producers*perProd, nil)
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				e := streamEvent(i)
				e.Node = p
				sink.Record(e)
			}
		}(p)
	}
	wg.Wait()
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if sink.Dropped() != 0 {
		t.Fatalf("dropped %d events with a queue sized for the whole load", sink.Dropped())
	}

	events, err := ReadJSONL(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != producers*perProd {
		t.Fatalf("read %d events, want %d", len(events), producers*perProd)
	}
	next := make([]int64, producers)
	for _, e := range events {
		if e.Conn != next[e.Node] {
			t.Fatalf("producer %d events reordered: got conn %d, want %d", e.Node, e.Conn, next[e.Node])
		}
		next[e.Node]++
	}
	for p, n := range next {
		if n != perProd {
			t.Errorf("producer %d: %d events in output, want %d", p, n, perProd)
		}
	}
}

// TestStreamSinkCloseIdempotent double-closes and checks the writer is
// only torn down once.
func TestStreamSinkCloseIdempotent(t *testing.T) {
	var out bytes.Buffer
	sink := NewStreamSink(&out, 8, nil)
	sink.Record(streamEvent(1))
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if got := sink.Written(); got != 1 {
		t.Errorf("Written() = %d after double close, want 1", got)
	}
}
