package telemetry_test

import (
	"bytes"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"github.com/rtcl/drtp/internal/telemetry"
)

// TestRegistryConcurrency hammers one counter family, one gauge and one
// histogram from GOMAXPROCS goroutines and asserts the totals are exact
// (run under -race in CI).
func TestRegistryConcurrency(t *testing.T) {
	reg := telemetry.NewRegistry()
	cv := reg.CounterVec("test_ops_total", "ops", "worker")
	shared := reg.Counter("test_shared_total", "shared")
	g := reg.Gauge("test_inflight", "inflight")
	h := reg.Histogram("test_latency_seconds", "latency", []float64{1, 10, 100})

	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := cv.With(string(rune('a' + w%8)))
			for i := 0; i < perWorker; i++ {
				mine.Inc()
				shared.Add(2)
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(i % 128))
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers) * perWorker
	if got := shared.Value(); got != 2*total {
		t.Errorf("shared counter = %d, want %d", got, 2*total)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	var perLabel int64
	for w := 0; w < 8 && w < workers; w++ {
		perLabel += cv.With(string(rune('a' + w))).Value()
	}
	if perLabel != total {
		t.Errorf("summed labeled counters = %d, want %d", perLabel, total)
	}
}

// TestTracerConcurrency emits from many goroutines into ring + metrics
// sinks and asserts exact totals survive.
func TestTracerConcurrency(t *testing.T) {
	reg := telemetry.NewRegistry()
	ring := telemetry.NewRing(1 << 20)
	tr := telemetry.NewTracer(ring, telemetry.NewMetricsSink(reg))

	workers := runtime.GOMAXPROCS(0)
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.ConnEstablish("D-LSR", 0, int64(w*perWorker+i), 3)
				tr.CDPForward("BF", 0, int64(i), 5)
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers) * perWorker
	if got := ring.Count(telemetry.EvConnEstablish); got != total {
		t.Errorf("ring establishes = %d, want %d", got, total)
	}
	if got := ring.Count(telemetry.EvCDPForward); got != 5*total {
		t.Errorf("ring CDP forwards = %d, want %d", got, 5*total)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `drtp_events_total{kind="cdp-forward",scheme="BF"}`) {
		t.Errorf("missing aggregated family in:\n%s", buf.String())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var tr *telemetry.Tracer
	tr.ConnRequest("x", 9, 1)
	tr.PrimarySetup("x", 9, 1, 2)
	tr.ConnEstablish("x", 9, 1, 2)
	tr.ConnReject("x", 9, 1, "no-route")
	tr.BackupRegister("x", 9, 1, 2, "")
	tr.BackupRelease("x", 9, 1, 1)
	tr.ConnTeardown("x", 9, 1)
	tr.LinkFail(0, 3)
	tr.BackupActivate("x", 9, 1, 3, "")
	tr.ActivationDenied("x", 9, 1, 3, "contention")
	tr.HopSignal(9, 1, 0, 3, "primary")
	tr.CDPForward("x", 9, 1, 7)
	tr.CDPDrop("x", 9, 1, 7, "detour")
	tr.LSUpdate(0, 4)
	tr.LinkState("x", 3, 1, 2, 3)
	tr.Emit(telemetry.Event{Kind: telemetry.EvLinkFail})
	tr.SetClock(nil)
	tr.SetNode(5)
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var reg *telemetry.Registry
	reg.Counter("a_total", "").Inc()
	reg.Gauge("b", "").Set(3)
	reg.Histogram("c_seconds", "", nil).Observe(1)
	reg.CounterVec("d_total", "", "l").With("v").Add(2)
	reg.GaugeVec("e", "", "l").With("v").Add(2)
	reg.HistogramVec("f_seconds", "", nil, "l").With("v").Observe(2)
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRingWraparound(t *testing.T) {
	r := telemetry.NewRing(3)
	tr := telemetry.NewTracer(r)
	for i := 0; i < 5; i++ {
		tr.Emit(telemetry.Event{Kind: telemetry.EvLSUpdate, Conn: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("retained %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if want := int64(i + 2); e.Conn != want {
			t.Errorf("event %d conn = %d, want %d", i, e.Conn, want)
		}
	}
	if r.Total() != 5 {
		t.Errorf("total = %d, want 5", r.Total())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := telemetry.NewJSONL(&buf)
	tr := telemetry.NewTracer(sink)
	tr.SetClock(func() float64 { return 42.5 })
	tr.BackupActivate("D-LSR", 99, 7, 13, "")
	tr.ActivationDenied("D-LSR", 99, 8, 13, "contention")
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", got, buf.String())
	}

	evs, err := telemetry.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 {
		t.Fatalf("decoded %d events, want 2", len(evs))
	}
	e := evs[0]
	if e.Kind != telemetry.EvBackupActivate || e.Conn != 7 || e.Link != 13 ||
		e.T != 42.5 || e.Scheme != "D-LSR" || e.N != 1 || e.Trace != 99 {
		t.Errorf("event 0 = %+v", e)
	}
	if evs[1].Reason != "contention" {
		t.Errorf("event 1 = %+v", evs[1])
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("ops_total", "Operations.").Add(5)
	reg.GaugeVec("conns", "Connections.", "node").With("0").Set(2)
	h := reg.Histogram("lat_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP ops_total Operations.",
		"# TYPE ops_total counter",
		"ops_total 5",
		`conns{node="0"} 2`,
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 5.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramBucketBoundary(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := reg.Histogram("h_seconds", "", []float64{1, 2})
	h.Observe(1) // le="1" is inclusive
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `h_seconds_bucket{le="1"} 1`) {
		t.Errorf("boundary observation landed in the wrong bucket:\n%s", buf.String())
	}
}

func TestHandler(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("up_total", "").Inc()
	srv := httptest.NewServer(telemetry.Handler(reg))
	defer srv.Close()

	res := httptest.NewRecorder()
	req := httptest.NewRequest("GET", "/metrics", nil)
	telemetry.Handler(reg).ServeHTTP(res, req)
	if res.Code != 200 || !strings.Contains(res.Body.String(), "up_total 1") {
		t.Errorf("/metrics: code %d body %q", res.Code, res.Body.String())
	}
	if ct := res.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}

	res = httptest.NewRecorder()
	telemetry.Handler(reg).ServeHTTP(res, httptest.NewRequest("GET", "/healthz", nil))
	if res.Code != 200 || strings.TrimSpace(res.Body.String()) != "ok" {
		t.Errorf("/healthz: code %d body %q", res.Code, res.Body.String())
	}
}

func TestParseEventKind(t *testing.T) {
	for _, k := range []telemetry.EventKind{
		telemetry.EvConnEstablish, telemetry.EvConnReject,
		telemetry.EvBackupRegister, telemetry.EvBackupRelease,
		telemetry.EvLinkFail, telemetry.EvBackupActivate,
		telemetry.EvActivationDenied, telemetry.EvCDPForward,
		telemetry.EvCDPDrop, telemetry.EvLSUpdate,
		telemetry.EvConnRequest, telemetry.EvPrimarySetup,
		telemetry.EvConnTeardown, telemetry.EvHopSignal,
		telemetry.EvLinkState,
	} {
		got, ok := telemetry.ParseEventKind(k.String())
		if !ok || got != k {
			t.Errorf("round trip of %v failed (got %v, %v)", k, got, ok)
		}
	}
	if _, ok := telemetry.ParseEventKind("bogus"); ok {
		t.Error("parsed bogus kind")
	}
}
