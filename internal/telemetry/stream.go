package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
)

// DefaultStreamQueue is the queue capacity a StreamSink gets when the
// caller passes a non-positive one: large enough to absorb the burstiest
// evaluation epochs of a fig4-scale sweep without drops, small enough
// that the sink's memory stays bounded regardless of run length.
const DefaultStreamQueue = 8192

// StreamSink is a non-blocking batched JSONL writer: events are handed
// to a single writer goroutine over a fixed-capacity queue, so Record
// never blocks the emitting loop (router dispatch, coordinator workers,
// experiment cells) on disk latency. When the queue is full the event is
// dropped and counted instead of stalling the producer — the explicit
// Dropped counter (and, when instrumented, the
// drtp_telemetry_stream_dropped_total series) makes the loss visible
// rather than silent.
//
// Because one goroutine drains the queue in arrival order, the bytes
// written are identical to a plain JSONL sink fed the same events
// whenever no drop occurs.
type StreamSink struct {
	ch      chan Event
	done    chan struct{}
	w       io.Writer
	bw      *bufio.Writer
	enc     *json.Encoder
	err     atomic.Pointer[error]
	dropped atomic.Int64
	written atomic.Int64
	closing sync.Once

	// lossless switches Record from drop-on-overflow to
	// block-on-overflow (see NewLosslessStreamSink).
	lossless bool

	// Optional registry instrumentation (nil-safe no-ops when absent).
	mDropped *Counter
	mWritten *Counter
}

// NewStreamSink creates a streaming sink over w with the given queue
// capacity (DefaultStreamQueue when non-positive) and starts its writer
// goroutine. Close flushes the batch buffer and, when w is an io.Closer,
// closes it. reg, which may be nil, receives the sink's drop/write
// counters so queue overflow shows up on /metrics.
func NewStreamSink(w io.Writer, queue int, reg *Registry) *StreamSink {
	if queue <= 0 {
		queue = DefaultStreamQueue
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	s := &StreamSink{
		ch:   make(chan Event, queue),
		done: make(chan struct{}),
		w:    w,
		bw:   bw,
		enc:  json.NewEncoder(bw),
		mDropped: reg.Counter("drtp_telemetry_stream_dropped_total",
			"Events dropped by the streaming trace sink on queue overflow."),
		mWritten: reg.Counter("drtp_telemetry_stream_written_total",
			"Events written by the streaming trace sink."),
	}
	go s.run()
	return s
}

// NewLosslessStreamSink is NewStreamSink with backpressure instead of
// drops: when the queue is full, Record blocks until the writer frees a
// slot. Memory stays bounded by the queue and the trace stays complete,
// at the price of producers occasionally waiting on disk — the right
// trade for offline analysis pipelines (the simulator's reconciliation
// and golden tests require every event), the wrong one for live routers.
func NewLosslessStreamSink(w io.Writer, queue int, reg *Registry) *StreamSink {
	s := NewStreamSink(w, queue, reg)
	s.lossless = true
	return s
}

// Record implements Sink. In the default mode it never blocks: when the
// queue is full the event is dropped and the drop counters incremented.
// A lossless sink blocks instead.
func (s *StreamSink) Record(e Event) {
	if s.lossless {
		s.ch <- e
		return
	}
	select {
	case s.ch <- e:
	default:
		s.dropped.Add(1)
		s.mDropped.Inc()
	}
}

// run is the writer goroutine: it drains the queue in arrival order,
// letting the bufio layer batch encodes, and flushes whenever the queue
// goes idle so a tailing reader sees events promptly.
func (s *StreamSink) run() {
	defer close(s.done)
	for {
		select {
		case e, ok := <-s.ch:
			if !ok {
				s.flush()
				return
			}
			s.encode(e)
		default:
			s.flush()
			e, ok := <-s.ch
			if !ok {
				return
			}
			s.encode(e)
		}
	}
}

func (s *StreamSink) encode(e Event) {
	if s.err.Load() != nil {
		return
	}
	if err := s.enc.Encode(e); err != nil {
		s.err.CompareAndSwap(nil, &err)
		return
	}
	s.written.Add(1)
	s.mWritten.Inc()
}

func (s *StreamSink) flush() {
	if err := s.bw.Flush(); err != nil {
		s.err.CompareAndSwap(nil, &err)
	}
}

// Dropped returns how many events were discarded on queue overflow.
func (s *StreamSink) Dropped() int64 { return s.dropped.Load() }

// Written returns how many events the writer goroutine has encoded.
func (s *StreamSink) Written() int64 { return s.written.Load() }

// Err returns the first write error, if any.
func (s *StreamSink) Err() error {
	if p := s.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Close stops accepting events, waits for the writer goroutine to drain
// the queue, flushes the batch buffer and closes the underlying writer
// when it is an io.Closer. Records racing with Close count as drops.
func (s *StreamSink) Close() error {
	s.closing.Do(func() {
		// Producers must stop emitting before Close (Tracer.Close runs
		// after the last Emit); a Record after Close would panic on the
		// closed queue, which makes that misuse loud instead of lossy.
		close(s.ch)
	})
	<-s.done
	if c, ok := s.w.(io.Closer); ok {
		if err := c.Close(); err != nil {
			s.err.CompareAndSwap(nil, &err)
		}
	}
	return s.Err()
}
