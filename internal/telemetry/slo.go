package telemetry

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// SLO is a latency objective: "the Percentile-quantile of <metric> stays
// at or below Threshold". Objectives evaluate against either a live
// LatencyHist or a slice of reconstructed samples (drtptrace's path), so
// the same verdict logic serves /metrics consumers and BENCH snapshots.
type SLO struct {
	// Name identifies the objective in reports, e.g. "establish-p95".
	Name string `json:"name"`
	// Percentile is the target quantile in (0, 1], e.g. 0.95.
	Percentile float64 `json:"percentile"`
	// Threshold is the latency bound the quantile must not exceed.
	Threshold time.Duration `json:"threshold_ns"`
}

// SLOResult is one evaluated objective.
type SLOResult struct {
	SLO
	// Samples is the number of observations the verdict is based on.
	Samples int64 `json:"samples"`
	// Observed is the measured quantile in seconds.
	Observed float64 `json:"observed_seconds"`
	// Pass reports whether the observed quantile met the threshold.
	// An objective with zero samples passes vacuously.
	Pass bool `json:"pass"`
	// BudgetBurn is the fraction of the error budget consumed: the share
	// of observations over Threshold divided by the allowed share
	// (1 - Percentile). 1.0 means the budget is exactly spent; > 1 means
	// the objective is violated on budget terms.
	BudgetBurn float64 `json:"budget_burn"`
}

// String renders the result as one report line.
func (r SLOResult) String() string {
	verdict := "PASS"
	if !r.Pass {
		verdict = "FAIL"
	}
	return fmt.Sprintf("%-24s p%g <= %v: observed %v over %d samples, budget burn %.2f [%s]",
		r.Name, 100*r.Percentile, r.Threshold,
		time.Duration(r.Observed*float64(time.Second)).Round(time.Microsecond),
		r.Samples, r.BudgetBurn, verdict)
}

// verdict fills the derived fields from the measured quantile and the
// count of observations over threshold.
func (s SLO) verdict(samples, over int64, observed time.Duration) SLOResult {
	res := SLOResult{SLO: s, Samples: samples, Observed: observed.Seconds()}
	if samples == 0 {
		res.Pass = true
		return res
	}
	res.Pass = observed <= s.Threshold
	allowed := (1 - s.Percentile) * float64(samples)
	if allowed <= 0 {
		// A p100 objective has no budget: any excess observation burns
		// infinitely. Report the over-count itself instead.
		if over > 0 {
			res.BudgetBurn = math.Inf(1)
		}
		return res
	}
	res.BudgetBurn = float64(over) / allowed
	return res
}

// EvaluateHist evaluates the objective against a live latency histogram.
func (s SLO) EvaluateHist(h *LatencyHist) SLOResult {
	return s.verdict(h.Count(), h.CountOver(s.Threshold), h.Quantile(s.Percentile))
}

// EvaluateSamples evaluates the objective against raw latency samples in
// seconds (e.g. reconstructed from a trace). The slice is not modified.
func (s SLO) EvaluateSamples(samples []float64) SLOResult {
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	n := int64(len(sorted))
	if n == 0 {
		return s.verdict(0, 0, 0)
	}
	observed := QuantileSeconds(sorted, s.Percentile)
	over := int64(0)
	limit := s.Threshold.Seconds()
	for _, v := range sorted {
		if v > limit {
			over++
		}
	}
	return s.verdict(n, over, time.Duration(observed*float64(time.Second)))
}

// QuantileSeconds returns the nearest-rank q-quantile of an ascending
// sorted slice (0 for an empty one) — the same estimator the disruption
// report uses, shared here so BENCH latency columns and report tables
// can never disagree on method.
func QuantileSeconds(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
