package telemetry

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// SchemeStats aggregates one routing scheme's lifecycle outcomes. The
// evaluation tallies reconcile exactly with the simulator's P_act-bk:
// EvalRecovered is its numerator and EvalAffected its denominator.
type SchemeStats struct {
	Scheme      string `json:"scheme"`
	Requests    int64  `json:"requests"`
	Established int64  `json:"established"`
	Rejected    int64  `json:"rejected"`
	BackupOK    int64  `json:"backup_ok"`
	BackupFail  int64  `json:"backup_fail"`

	EvalRecovered int64            `json:"eval_recovered"`
	EvalDenied    int64            `json:"eval_denied"`
	EvalAffected  int64            `json:"eval_affected"`
	DeniedReasons map[string]int64 `json:"denied_reasons,omitempty"`

	// Switched/Dropped count destructive recoveries (live channel
	// switches and connections lost to a failure).
	Switched int64 `json:"switched"`
	Dropped  int64 `json:"dropped"`

	// Retries counts signalling retransmissions and DedupHits the
	// duplicate packets absorbed by the idempotent dedup layer, across
	// this scheme's connection spans (chaos/lossy runs only).
	Retries   int64 `json:"retries,omitempty"`
	DedupHits int64 `json:"dedup_hits,omitempty"`

	// FaultTolerance is EvalRecovered / EvalAffected (the paper's
	// P_act-bk); NaN-free: 0 when nothing was affected.
	FaultTolerance float64 `json:"fault_tolerance"`
}

// DisruptionBucket is one histogram bucket of service-disruption times;
// Le is the inclusive upper bound (math.Inf(1) for the overflow bucket).
type DisruptionBucket struct {
	Le    float64 `json:"le"`
	Count int     `json:"count"`
}

// MarshalJSON encodes the overflow bound as the string "+Inf" — infinite
// floats are not representable as JSON numbers.
func (b DisruptionBucket) MarshalJSON() ([]byte, error) {
	le := `"+Inf"`
	if !math.IsInf(b.Le, 1) {
		le = strconv.FormatFloat(b.Le, 'g', -1, 64)
	}
	return []byte(fmt.Sprintf(`{"le":%s,"count":%d}`, le, b.Count)), nil
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *DisruptionBucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    json.RawMessage `json:"le"`
		Count int             `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if string(raw.Le) == `"+Inf"` {
		b.Le = math.Inf(1)
		return nil
	}
	return json.Unmarshal(raw.Le, &b.Le)
}

// DisruptionStats summarizes service-disruption times — the interval
// from a link-failure event to each affected connection's backup
// activation — across all recovery spans.
type DisruptionStats struct {
	Samples int                `json:"samples"`
	Min     float64            `json:"min"`
	P50     float64            `json:"p50"`
	P90     float64            `json:"p90"`
	P95     float64            `json:"p95"`
	P99     float64            `json:"p99"`
	Max     float64            `json:"max"`
	Mean    float64            `json:"mean"`
	Buckets []DisruptionBucket `json:"buckets,omitempty"`
}

// LinkStat ranks one link by how critical its failure is: how many
// connections could not be recovered when it failed (evaluation denials
// plus destructive drops), tie-broken by total affected connections.
type LinkStat struct {
	Link          int   `json:"link"`
	Failures      int   `json:"failures"`
	EvalRecovered int64 `json:"eval_recovered"`
	EvalDenied    int64 `json:"eval_denied"`
	Switched      int64 `json:"switched"`
	Dropped       int64 `json:"dropped"`
}

// Criticality is the link's unrecovered-connection count.
func (l *LinkStat) Criticality() int64 { return l.EvalDenied + l.Dropped }

// OccupancyStat aggregates one link's occupancy samples under one
// scheme: average reserved primary/spare bandwidth units and the peak
// spare pool and backup-multiplexing degree observed.
type OccupancyStat struct {
	Scheme   string  `json:"scheme"`
	Link     int     `json:"link"`
	Samples  int     `json:"samples"`
	AvgPrime float64 `json:"avg_prime"`
	AvgSpare float64 `json:"avg_spare"`
	MaxSpare int     `json:"max_spare"`
	MaxMux   int     `json:"max_mux"`
}

// Report is the paper-aligned analysis of a reconstructed Trace.
type Report struct {
	Events     int              `json:"events"`
	Conns      int              `json:"conns"`
	Failures   int              `json:"failures"`
	Schemes    []*SchemeStats   `json:"schemes"`
	Disruption DisruptionStats  `json:"disruption"`
	Links      []*LinkStat      `json:"links,omitempty"`
	Occupancy  []*OccupancyStat `json:"occupancy,omitempty"`
	// FaultsInjected counts chaos-layer fault events by action (drop,
	// dup, reorder, delay, crash, partition, edge-fail, edge-repair);
	// empty for fault-free traces.
	FaultsInjected map[string]int64 `json:"faults_injected,omitempty"`
}

// DefaultDisruptionBounds are the histogram bucket upper bounds used by
// BuildReport, in the trace's time unit (simulated minutes for drtpsim
// traces, seconds for drtpnode traces).
var DefaultDisruptionBounds = []float64{0.001, 0.01, 0.05, 0.1, 0.5, 1, 5}

// BuildReport derives the paper-aligned report from a reconstructed
// trace: per-scheme fault tolerance, the service-disruption histogram,
// link criticality ranking, and spare-occupancy aggregates.
func BuildReport(tr *Trace) *Report {
	rep := &Report{Events: tr.Total, Conns: len(tr.Spans), Failures: len(tr.Recoveries)}

	schemes := map[string]*SchemeStats{}
	links := map[int]*LinkStat{}
	scheme := func(name string) *SchemeStats {
		s := schemes[name]
		if s == nil {
			s = &SchemeStats{Scheme: name, DeniedReasons: map[string]int64{}}
			schemes[name] = s
		}
		return s
	}
	link := func(id int) *LinkStat {
		l := links[id]
		if l == nil {
			l = &LinkStat{Link: id}
			links[id] = l
		}
		return l
	}

	for _, sp := range tr.Spans {
		st := scheme(sp.Scheme)
		for _, e := range sp.Events {
			switch e.Kind {
			case EvConnRequest:
				st.Requests += int64(e.N)
			case EvConnEstablish:
				st.Established += int64(e.N)
			case EvConnReject:
				st.Rejected += int64(e.N)
			case EvBackupRegister:
				if e.Reason == "" {
					st.BackupOK += int64(e.N)
				} else {
					st.BackupFail += int64(e.N)
				}
			case EvBackupActivate:
				if destructiveOutcome(e) {
					st.Switched += int64(e.N)
				} else {
					st.EvalRecovered += int64(e.N)
					if e.Link >= 0 {
						link(e.Link).EvalRecovered += int64(e.N)
					}
				}
			case EvActivationDenied:
				if destructiveOutcome(e) {
					st.Dropped += int64(e.N)
				} else {
					st.EvalDenied += int64(e.N)
					st.DeniedReasons[e.Reason] += int64(e.N)
					if e.Link >= 0 {
						link(e.Link).EvalDenied += int64(e.N)
					}
				}
			case EvRetry:
				st.Retries += int64(e.N)
			case EvDedupHit:
				st.DedupHits += int64(e.N)
			}
		}
	}

	for _, e := range tr.Faults {
		if rep.FaultsInjected == nil {
			rep.FaultsInjected = map[string]int64{}
		}
		action := e.Reason
		if action == "" {
			action = "-"
		}
		rep.FaultsInjected[action] += int64(e.N)
	}

	var disruptions []float64
	for _, r := range tr.Recoveries {
		if r.Link >= 0 {
			link(r.Link).Failures++
		}
		for _, o := range r.Outcomes {
			if o.Recovered {
				disruptions = append(disruptions, o.Disruption)
			}
			if r.Link >= 0 {
				if o.Recovered {
					link(r.Link).Switched++
				} else {
					link(r.Link).Dropped++
				}
			}
		}
	}

	for _, s := range schemes {
		s.EvalAffected = s.EvalRecovered + s.EvalDenied
		if s.EvalAffected > 0 {
			s.FaultTolerance = float64(s.EvalRecovered) / float64(s.EvalAffected)
		}
		if len(s.DeniedReasons) == 0 {
			s.DeniedReasons = nil
		}
		rep.Schemes = append(rep.Schemes, s)
	}
	sort.Slice(rep.Schemes, func(i, j int) bool {
		return rep.Schemes[i].Scheme < rep.Schemes[j].Scheme
	})

	rep.Disruption = summarizeDisruptions(disruptions)

	for _, l := range links {
		rep.Links = append(rep.Links, l)
	}
	sort.Slice(rep.Links, func(i, j int) bool {
		a, b := rep.Links[i], rep.Links[j]
		if a.Criticality() != b.Criticality() {
			return a.Criticality() > b.Criticality()
		}
		if ra, rb := a.EvalRecovered+a.Switched, b.EvalRecovered+b.Switched; ra != rb {
			return ra > rb
		}
		return a.Link < b.Link
	})

	rep.Occupancy = summarizeOccupancy(tr.LinkStates)
	return rep
}

func summarizeDisruptions(samples []float64) DisruptionStats {
	d := DisruptionStats{Samples: len(samples)}
	if len(samples) == 0 {
		return d
	}
	sort.Float64s(samples)
	d.Min = samples[0]
	d.Max = samples[len(samples)-1]
	d.P50 = quantile(samples, 0.50)
	d.P90 = quantile(samples, 0.90)
	d.P95 = quantile(samples, 0.95)
	d.P99 = quantile(samples, 0.99)
	var sum float64
	for _, v := range samples {
		sum += v
	}
	d.Mean = sum / float64(len(samples))

	bounds := DefaultDisruptionBounds
	d.Buckets = make([]DisruptionBucket, len(bounds)+1)
	for i, b := range bounds {
		d.Buckets[i].Le = b
	}
	d.Buckets[len(bounds)].Le = math.Inf(1)
	for _, v := range samples {
		i := sort.SearchFloat64s(bounds, v) // bucket with Le >= v (inclusive)
		d.Buckets[i].Count++
	}
	return d
}

// quantile returns the nearest-rank q-quantile of sorted samples; it
// delegates to the shared estimator so report tables and SLO verdicts
// cannot disagree on method.
func quantile(sorted []float64, q float64) float64 {
	return QuantileSeconds(sorted, q)
}

func summarizeOccupancy(states []Event) []*OccupancyStat {
	type key struct {
		scheme string
		link   int
	}
	acc := map[key]*OccupancyStat{}
	sums := map[key]*[2]int64{}
	for _, e := range states {
		k := key{e.Scheme, e.Link}
		o := acc[k]
		if o == nil {
			o = &OccupancyStat{Scheme: e.Scheme, Link: e.Link}
			acc[k] = o
			sums[k] = &[2]int64{}
		}
		o.Samples++
		sums[k][0] += int64(e.Prime)
		sums[k][1] += int64(e.Spare)
		if e.Spare > o.MaxSpare {
			o.MaxSpare = e.Spare
		}
		if e.Mux > o.MaxMux {
			o.MaxMux = e.Mux
		}
	}
	out := make([]*OccupancyStat, 0, len(acc))
	for k, o := range acc {
		o.AvgPrime = float64(sums[k][0]) / float64(o.Samples)
		o.AvgSpare = float64(sums[k][1]) / float64(o.Samples)
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Scheme != out[j].Scheme {
			return out[i].Scheme < out[j].Scheme
		}
		if out[i].MaxMux != out[j].MaxMux {
			return out[i].MaxMux > out[j].MaxMux
		}
		return out[i].Link < out[j].Link
	})
	return out
}
