// Package telemetry is the runtime observability layer: a lock-cheap
// metrics registry (counters, gauges, histograms with atomic fast paths,
// labeled families) plus a structured event bus (Tracer) with pluggable
// sinks. Both are nil-safe: a nil *Tracer and a nil *Registry are valid
// no-op instruments, so hot paths can stay instrumented unconditionally
// without branching on configuration.
//
// The registry exposes Prometheus text format (WritePrometheus, Handler)
// for live processes such as cmd/drtpnode; simulations aggregate the same
// families through a MetricsSink and print them with -metrics-summary.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; all methods are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count. A nil counter reads zero.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value. A nil gauge reads zero.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates observations into cumulative buckets, Prometheus
// style: bucket i counts observations <= Bounds[i], with an implicit +Inf
// bucket at the end. Observe is lock-free (atomic adds plus a CAS loop
// for the float sum).
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// DefBuckets is a general-purpose latency bucket layout in seconds.
var DefBuckets = []float64{1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1, 5}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, upd) {
			return
		}
	}
}

// Count returns the number of observations. A nil histogram reads zero.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// metric kinds, matching the Prometheus TYPE annotations.
type metricKind uint8

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindHistogram
	// kindLatency is the log2-bucketed LatencyHist; it exposes as a
	// Prometheus histogram with power-of-two second bounds.
	kindLatency
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram, kindLatency:
		return "histogram"
	default:
		return "untyped"
	}
}

// family is one named metric with a fixed label schema and one child per
// distinct label-value combination.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histograms only

	mu       sync.RWMutex
	order    []string // child keys in creation order
	children map[string]any
	values   map[string][]string // child key -> label values
}

// childKey joins label values; \x1f never occurs in sane label values.
func childKey(values []string) string { return strings.Join(values, "\x1f") }

// child returns (creating if needed) the child for the label values.
func (f *family) child(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labels), len(values)))
	}
	key := childKey(values)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	switch f.kind {
	case kindCounter:
		c = &Counter{}
	case kindGauge:
		c = &Gauge{}
	case kindLatency:
		c = &LatencyHist{}
	default:
		c = newHistogram(f.bounds)
	}
	f.children[key] = c
	vs := make([]string, len(values))
	copy(vs, values)
	f.values[key] = vs
	f.order = append(f.order, key)
	return c
}

// Registry holds metric families. The zero value is not usable; create
// one with NewRegistry. A nil *Registry hands out nil instruments, which
// are themselves no-ops, so optional wiring needs no branches.
type Registry struct {
	mu       sync.RWMutex
	byName   map[string]*family
	families []*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// family finds or creates a family, enforcing schema consistency.
func (r *Registry) family(name, help string, kind metricKind, labels []string, bounds []float64) *family {
	r.mu.RLock()
	f, ok := r.byName[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.byName[name]; !ok {
			ls := make([]string, len(labels))
			copy(ls, labels)
			f = &family{
				name: name, help: help, kind: kind, labels: ls, bounds: bounds,
				children: make(map[string]any), values: make(map[string][]string),
			}
			r.byName[name] = f
			r.families = append(r.families, f)
		}
		r.mu.Unlock()
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: metric %q re-registered with a different schema", name))
	}
	return f
}

// Counter returns the unlabeled counter with the given name, registering
// it on first use. A nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindCounter, nil, nil).child(nil).(*Counter)
}

// Gauge returns the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindGauge, nil, nil).child(nil).(*Gauge)
}

// Histogram returns the unlabeled histogram with the given name and
// bucket upper bounds (DefBuckets when empty).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return r.family(name, help, kindHistogram, nil, bounds).child(nil).(*Histogram)
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family with the given name.
// A nil registry returns a nil vec whose With returns nil counters.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, kindCounter, labels, nil)}
}

// With returns the child counter for the label values, creating it on
// first use. Hot paths should resolve children once and keep the handle.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Counter)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family with the given name.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, kindGauge, labels, nil)}
}

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Gauge)
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family with the given name
// and bucket upper bounds (DefBuckets when empty).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &HistogramVec{f: r.family(name, help, kindHistogram, labels, bounds)}
}

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*Histogram)
}

// WritePrometheus writes every family in Prometheus text exposition
// format (families in registration order, children in creation order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.RUnlock()
	for _, f := range families {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) write(w io.Writer) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if len(f.order) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
		return err
	}
	for _, key := range f.order {
		values := f.values[key]
		switch c := f.children[key].(type) {
		case *Counter:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, ""), c.Value()); err != nil {
				return err
			}
		case *Gauge:
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(f.labels, values, ""), c.Value()); err != nil {
				return err
			}
		case *Histogram:
			if err := c.write(w, f.name, f.labels, values); err != nil {
				return err
			}
		case *LatencyHist:
			if err := c.write(w, f.name, f.labels, values); err != nil {
				return err
			}
		}
	}
	return nil
}

func (h *Histogram) write(w io.Writer, name string, labels, values []string) error {
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		le := fmt.Sprintf("%g", bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, le), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labelString(labels, values, ""), h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, values, ""), h.Count())
	return err
}

// labelString renders {k="v",...}; le, when non-empty, is appended as the
// histogram bucket bound label.
func labelString(labels, values []string, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
