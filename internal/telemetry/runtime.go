package telemetry

import (
	"math"
	"runtime/metrics"
	"time"
)

// runtimeSamples are the runtime/metrics series the sampler scrapes.
// Gauges republish the latest value; histogram series are merged as
// deltas into log2 latency histograms so /metrics exposes cumulative
// GC-pause and scheduling-latency distributions.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// runtimeSampler periodically folds runtime/metrics into a Registry.
type runtimeSampler struct {
	samples []metrics.Sample
	prev    map[string][]uint64 // histogram counts at the last tick

	goroutines *Gauge
	heapBytes  *Gauge
	memBytes   *Gauge
	gcCycles   *Counter
	prevCycles uint64
	gcPause    *LatencyHist
	schedLat   *LatencyHist
}

// StartRuntimeSampler launches a goroutine sampling the Go runtime every
// interval (1s when non-positive) into reg: heap/total memory gauges,
// goroutine count, GC cycle counter, and GC-pause / scheduler-latency
// histograms. It returns a stop function that halts the goroutine after
// a final sample, so short runs still report. A nil registry yields a
// no-op stop.
//
// This is the data source behind the -runtime-metrics flag of drtpnode
// and drtpsim: it turns "is the parallel engine scheduler-bound or
// GC-bound?" into series that sit next to the protocol metrics.
func StartRuntimeSampler(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	s := &runtimeSampler{
		samples: make([]metrics.Sample, len(runtimeSamples)),
		prev:    make(map[string][]uint64),
		goroutines: reg.Gauge("drtp_runtime_goroutines",
			"Live goroutines at the last runtime sample."),
		heapBytes: reg.Gauge("drtp_runtime_heap_objects_bytes",
			"Bytes occupied by live plus dead-unswept heap objects."),
		memBytes: reg.Gauge("drtp_runtime_memory_total_bytes",
			"Total memory mapped by the Go runtime."),
		gcCycles: reg.Counter("drtp_runtime_gc_cycles_total",
			"Completed garbage-collection cycles."),
		gcPause: reg.Latency("drtp_runtime_gc_pause_seconds",
			"Stop-the-world garbage-collection pause durations."),
		schedLat: reg.Latency("drtp_runtime_sched_latency_seconds",
			"Time goroutines spent runnable before running."),
	}
	for i, name := range runtimeSamples {
		s.samples[i].Name = name
	}
	s.scrape() // seed histogram baselines so the first tick reports deltas

	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.scrape()
			case <-done:
				s.scrape()
				return
			}
		}
	}()
	return func() {
		close(done)
		<-stopped
	}
}

// scrape reads one batch of runtime metrics into the registry.
func (s *runtimeSampler) scrape() {
	metrics.Read(s.samples)
	for i := range s.samples {
		sm := &s.samples[i]
		switch sm.Value.Kind() {
		case metrics.KindUint64:
			v := sm.Value.Uint64()
			switch sm.Name {
			case "/sched/goroutines:goroutines":
				s.goroutines.Set(int64(v))
			case "/memory/classes/heap/objects:bytes":
				s.heapBytes.Set(int64(v))
			case "/memory/classes/total:bytes":
				s.memBytes.Set(int64(v))
			case "/gc/cycles/total:gc-cycles":
				s.gcCycles.Add(int64(v - s.prevCycles))
				s.prevCycles = v
			}
		case metrics.KindFloat64Histogram:
			var dst *LatencyHist
			switch sm.Name {
			case "/gc/pauses:seconds":
				dst = s.gcPause
			case "/sched/latencies:seconds":
				dst = s.schedLat
			}
			if dst != nil {
				s.mergeHistogram(sm.Name, sm.Value.Float64Histogram(), dst)
			}
		}
	}
}

// mergeHistogram folds the delta since the previous scrape of a
// runtime/metrics histogram into dst, representing each runtime bucket
// by its midpoint (its finite edge for the open-ended end buckets).
func (s *runtimeSampler) mergeHistogram(name string, h *metrics.Float64Histogram, dst *LatencyHist) {
	if h == nil {
		return
	}
	prev := s.prev[name]
	if len(prev) != len(h.Counts) {
		prev = make([]uint64, len(h.Counts))
	}
	for i, c := range h.Counts {
		d := c - prev[i]
		prev[i] = c
		if d == 0 || i+1 >= len(h.Buckets) {
			continue
		}
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var rep float64
		switch {
		case math.IsInf(lo, -1):
			rep = hi
		case math.IsInf(hi, 1):
			rep = lo
		default:
			rep = (lo + hi) / 2
		}
		dst.add(time.Duration(rep*float64(time.Second)), int64(d))
	}
	s.prev[name] = prev
}
