package telemetry_test

import (
	"testing"

	"github.com/rtcl/drtp/internal/telemetry"
)

// BenchmarkNilTracerEmit measures the disabled fast path a nil tracer
// adds to an instrumented call site — the overhead every hot path pays
// when telemetry is off (expected ~1ns, well under the 5ns budget).
func BenchmarkNilTracerEmit(b *testing.B) {
	var tr *telemetry.Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ConnEstablish("D-LSR", 0, int64(i), 4)
	}
}

// BenchmarkSinklessTracerEmit measures a non-nil tracer with no sinks —
// the other no-op shape.
func BenchmarkSinklessTracerEmit(b *testing.B) {
	tr := telemetry.NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ConnEstablish("D-LSR", 0, int64(i), 4)
	}
}

// BenchmarkRingEmit measures the enabled path into the in-memory ring.
func BenchmarkRingEmit(b *testing.B) {
	tr := telemetry.NewTracer(telemetry.NewRing(1024))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.ConnEstablish("D-LSR", 0, int64(i), 4)
	}
}

// BenchmarkCounterAdd measures the registry counter fast path.
func BenchmarkCounterAdd(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterAddParallel measures contended atomic increments.
func BenchmarkCounterAddParallel(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkHistogramObserve measures the lock-free histogram path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := telemetry.NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 1000)
	}
}

// BenchmarkCounterVecWith measures the labeled child lookup (the path to
// avoid in hot loops by caching the child handle).
func BenchmarkCounterVecWith(b *testing.B) {
	cv := telemetry.NewRegistry().CounterVec("bench_total", "", "kind")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cv.With("establish").Inc()
	}
}
