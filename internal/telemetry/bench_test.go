package telemetry_test

import (
	"testing"
	"time"

	"github.com/rtcl/drtp/internal/telemetry"
)

// Every benchmark resets the timer after constructing its instrument:
// registry construction and family registration allocate, and at small
// -benchtime values (bench.sh uses 1x passes for alloc counts) that
// setup would otherwise dominate the measurement and misreport the hot
// path as allocating.

// BenchmarkNilTracerEmit measures the disabled fast path a nil tracer
// adds to an instrumented call site — the overhead every hot path pays
// when telemetry is off (expected ~1ns, well under the 5ns budget).
func BenchmarkNilTracerEmit(b *testing.B) {
	var tr *telemetry.Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ConnEstablish("D-LSR", 0, int64(i), 4)
	}
}

// BenchmarkSinklessTracerEmit measures a non-nil tracer with no sinks —
// the other no-op shape.
func BenchmarkSinklessTracerEmit(b *testing.B) {
	tr := telemetry.NewTracer()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ConnEstablish("D-LSR", 0, int64(i), 4)
	}
}

// BenchmarkRingEmit measures the enabled path into the in-memory ring.
func BenchmarkRingEmit(b *testing.B) {
	tr := telemetry.NewTracer(telemetry.NewRing(1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.ConnEstablish("D-LSR", 0, int64(i), 4)
	}
}

// BenchmarkCounterAdd measures the registry counter fast path.
func BenchmarkCounterAdd(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkCounterAddParallel measures contended atomic increments.
func BenchmarkCounterAddParallel(b *testing.B) {
	c := telemetry.NewRegistry().Counter("bench_total", "")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

// BenchmarkHistogramObserve measures the lock-free histogram path.
func BenchmarkHistogramObserve(b *testing.B) {
	h := telemetry.NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 1000)
	}
}

// BenchmarkLatencyObserve measures the log2-bucketed latency histogram's
// observe path — the instrument on per-hop signalling and the setup
// pipeline, required to be allocation-free.
func BenchmarkLatencyObserve(b *testing.B) {
	h := telemetry.NewRegistry().Latency("bench_seconds", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

// BenchmarkLatencyObserveParallel measures the same path under
// contention, as routers observe from many goroutines at once.
func BenchmarkLatencyObserveParallel(b *testing.B) {
	h := telemetry.NewRegistry().Latency("bench_seconds", "")
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(250 * time.Microsecond)
		}
	})
}

// BenchmarkCounterVecWith measures the labeled child lookup (the path to
// avoid in hot loops by caching the child handle).
func BenchmarkCounterVecWith(b *testing.B) {
	cv := telemetry.NewRegistry().CounterVec("bench_total", "", "kind")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cv.With("establish").Inc()
	}
}

// BenchmarkStreamRecord measures the bounded-queue trace sink's producer
// side with a draining writer: one non-blocking channel send per event.
func BenchmarkStreamRecord(b *testing.B) {
	sink := telemetry.NewStreamSink(discardWriter{}, 1<<16, nil)
	defer sink.Close()
	e := telemetry.Event{Kind: telemetry.EvConnEstablish, Scheme: "D-LSR", Hops: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Conn = int64(i)
		sink.Record(e)
	}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }
