package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
)

// Ring is an in-memory sink keeping the most recent events in a fixed
// circular buffer. Intended for tests and live inspection.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int
	full  bool
	total int64
}

// NewRing creates a ring sink holding up to n events (n < 1 becomes 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{buf: make([]Event, n)}
}

// Record implements Sink.
func (r *Ring) Record(e Event) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next++
	r.total++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		out := make([]Event, r.next)
		copy(out, r.buf[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total returns the number of events recorded over the ring's lifetime
// (including events that have been overwritten).
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Count sums the multiplicity (N) of retained events of the given kind.
func (r *Ring) Count(kind EventKind) int64 {
	var n int64
	for _, e := range r.Events() {
		if e.Kind == kind {
			n += int64(e.N)
		}
	}
	return n
}

// Buffer is an unbounded in-memory sink retaining every event in arrival
// order. The parallel experiment engine gives each concurrently-running
// cell its own Buffer-backed tracer and forwards the captured events to
// the shared sinks in deterministic cell order once the cell completes
// (Tracer.Forward), so trace output is identical at any worker count.
type Buffer struct {
	mu     sync.Mutex
	events []Event
}

// NewBuffer creates an empty buffer sink.
func NewBuffer() *Buffer { return &Buffer{} }

// Record implements Sink.
func (b *Buffer) Record(e Event) {
	b.mu.Lock()
	b.events = append(b.events, e)
	b.mu.Unlock()
}

// RecordBatch implements BatchSink: the whole slice is appended under one
// lock acquisition.
func (b *Buffer) RecordBatch(events []Event) {
	b.mu.Lock()
	b.events = append(b.events, events...)
	b.mu.Unlock()
}

// Events returns the recorded events in arrival order.
func (b *Buffer) Events() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Take returns the recorded events in arrival order without copying. The
// returned slice aliases the buffer's storage, so it is valid only until
// the next Record or after Reset is followed by new records. The parallel
// engine drains each completed cell with Take, forwards, then Reset.
func (b *Buffer) Take() []Event {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.events
}

// Reset forgets the recorded events while keeping the buffer's capacity,
// so a pooled buffer's storage is reused by the next cell.
func (b *Buffer) Reset() {
	b.mu.Lock()
	b.events = b.events[:0]
	b.mu.Unlock()
}

// Len returns the number of recorded events.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// JSONL is a sink writing one JSON object per event, one per line, to a
// buffered writer.
type JSONL struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
	w   io.Writer
	err error
}

// NewJSONL creates a JSONL sink over w. Close flushes the buffer and, if
// w is an io.Closer, closes it.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw), w: w}
}

// Record implements Sink. The first write error is retained (see Err)
// and later records become no-ops.
func (j *JSONL) Record(e Event) {
	j.mu.Lock()
	if j.err == nil {
		j.err = j.enc.Encode(e)
	}
	j.mu.Unlock()
}

// RecordBatch implements BatchSink: the whole slice is encoded under one
// lock acquisition, producing the same lines Record would.
func (j *JSONL) RecordBatch(events []Event) {
	j.mu.Lock()
	for i := range events {
		if j.err != nil {
			break
		}
		j.err = j.enc.Encode(events[i])
	}
	j.mu.Unlock()
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Close flushes buffered lines and closes the underlying writer when it
// is an io.Closer.
func (j *JSONL) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	if c, ok := j.w.(io.Closer); ok {
		if err := c.Close(); err != nil && j.err == nil {
			j.err = err
		}
	}
	return j.err
}

// ReadJSONL decodes a JSONL trace written by a JSONL sink.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, e)
	}
}

// MetricsSink aggregates events into a Registry: one
// drtp_events_total{kind,scheme} counter family (incremented by each
// event's multiplicity N) plus drtp_link_failures_total and
// drtp_cdp_drops_total{reason} (hop-limit vs detour, so BF's flooding
// overhead is attributable). It is how live processes turn the event
// stream into /metrics families.
type MetricsSink struct {
	events    *CounterVec
	linkFails *Counter
	cdpDrops  *CounterVec
	retries   *CounterVec
	dedupHits *Counter
	faults    *CounterVec
}

// NewMetricsSink creates a sink aggregating into reg.
func NewMetricsSink(reg *Registry) *MetricsSink {
	return &MetricsSink{
		events: reg.CounterVec("drtp_events_total",
			"Protocol events by kind and routing scheme.", "kind", "scheme"),
		linkFails: reg.Counter("drtp_link_failures_total",
			"Links declared failed."),
		cdpDrops: reg.CounterVec("drtp_cdp_drops_total",
			"Channel-discovery packets dropped, by discarding test.", "reason"),
		retries: reg.CounterVec("drtp_signal_retries_total",
			"Signalling round trips retransmitted, by operation.", "op"),
		dedupHits: reg.Counter("drtp_signal_dedup_hits_total",
			"Duplicate signalling packets absorbed by the dedup layer."),
		faults: reg.CounterVec("drtp_faults_injected_total",
			"Faults applied by the chaos layer, by action.", "action"),
	}
}

// Record implements Sink.
func (m *MetricsSink) Record(e Event) {
	scheme := e.Scheme
	if scheme == "" {
		scheme = "-"
	}
	m.events.With(e.Kind.String(), scheme).Add(int64(e.N))
	switch e.Kind {
	case EvLinkFail:
		m.linkFails.Add(int64(e.N))
	case EvCDPDrop:
		reason := e.Reason
		if reason == "" {
			reason = "-"
		}
		m.cdpDrops.With(reason).Add(int64(e.N))
	case EvRetry:
		op := e.Reason
		if op == "" {
			op = "-"
		}
		m.retries.With(op).Add(int64(e.N))
	case EvDedupHit:
		m.dedupHits.Add(int64(e.N))
	case EvFaultInjected:
		action := e.Reason
		if action == "" {
			action = "-"
		}
		m.faults.With(action).Add(int64(e.N))
	}
}
