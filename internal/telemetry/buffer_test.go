package telemetry_test

import (
	"reflect"
	"sync"
	"testing"

	"github.com/rtcl/drtp/internal/telemetry"
)

// TestBufferRecordsInOrder asserts the Buffer sink keeps insertion order
// and that Events returns a copy, not the live slice.
func TestBufferRecordsInOrder(t *testing.T) {
	buf := telemetry.NewBuffer()
	for i := 0; i < 5; i++ {
		buf.Record(telemetry.Event{Conn: int64(i), N: 1})
	}
	if buf.Len() != 5 {
		t.Fatalf("len = %d", buf.Len())
	}
	got := buf.Events()
	for i, e := range got {
		if e.Conn != int64(i) {
			t.Fatalf("event %d has conn %d", i, e.Conn)
		}
	}
	got[0].Conn = 99
	if fresh := buf.Events(); fresh[0].Conn != 0 {
		t.Fatal("Events must return a copy")
	}
}

// TestBufferConcurrentRecord hammers one buffer from many goroutines;
// every event must land exactly once (run under -race in CI).
func TestBufferConcurrentRecord(t *testing.T) {
	buf := telemetry.NewBuffer()
	const goroutines, per = 8, 100
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				buf.Record(telemetry.Event{Node: g, Conn: int64(i), N: 1})
			}
		}(g)
	}
	wg.Wait()
	if buf.Len() != goroutines*per {
		t.Fatalf("len = %d, want %d", buf.Len(), goroutines*per)
	}
}

// TestForwardPreservesEvents asserts Forward replays buffered events into
// a tracer's sinks verbatim — same timestamps, same order — which is what
// makes trace output identical at any experiment worker count. Emit, by
// contrast, re-stamps the clock.
func TestForwardPreservesEvents(t *testing.T) {
	cell := telemetry.NewBuffer()
	cellTracer := telemetry.NewTracer(cell)
	tick := 0.0
	cellTracer.SetClock(func() float64 { tick += 1.5; return tick })
	cellTracer.ConnRequest("D-LSR", 7, 1)
	cellTracer.ConnEstablish("D-LSR", 7, 1, 3)
	cellTracer.ConnTeardown("D-LSR", 7, 1)

	shared := telemetry.NewBuffer()
	sharedTracer := telemetry.NewTracer(shared)
	sharedTracer.SetClock(func() float64 { return 999 }) // must NOT restamp
	for _, e := range cell.Events() {
		sharedTracer.Forward(e)
	}
	if !reflect.DeepEqual(shared.Events(), cell.Events()) {
		t.Fatalf("forwarded events differ:\ngot  %+v\nwant %+v", shared.Events(), cell.Events())
	}
	if got := shared.Events()[0].T; got != 1.5 {
		t.Fatalf("forwarded timestamp restamped to %v", got)
	}
}

// TestForwardNormalizesMultiplicity mirrors Emit's N floor.
func TestForwardNormalizesMultiplicity(t *testing.T) {
	buf := telemetry.NewBuffer()
	tr := telemetry.NewTracer(buf)
	tr.Forward(telemetry.Event{Kind: telemetry.EvLSUpdate})
	if got := buf.Events()[0].N; got != 1 {
		t.Fatalf("N = %d, want 1", got)
	}
}

// TestForwardDisabledTracer asserts Forward is a no-op on nil and
// sink-less tracers, like every other tracer method.
func TestForwardDisabledTracer(t *testing.T) {
	var nilTracer *telemetry.Tracer
	nilTracer.Forward(telemetry.Event{N: 1}) // must not panic
	empty := telemetry.NewTracer()
	empty.Forward(telemetry.Event{N: 1})
}
