package telemetry

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyBuckets is the fixed bucket count of a LatencyHist: bucket b
// holds observations whose nanosecond count has bit length b, i.e.
// durations in [2^(b-1), 2^b) ns, with bucket 0 reserved for <= 0. A
// 64-entry array covers every possible time.Duration, so Observe never
// grows anything and the whole histogram is one flat allocation.
const latencyBuckets = 64

// LatencyHist is a lock-free log2-bucketed latency histogram. Observe is
// a single atomic add into a fixed array plus two atomic adds for the
// count/sum pair: no allocation, no sorting, no CAS loop, which makes it
// safe to call from router dispatch and coordinator hot paths. The zero
// value is ready to use and a nil *LatencyHist is a no-op, matching the
// package's other instruments.
//
// The price of the fixed log2 layout is resolution: quantiles are
// estimated from bucket midpoints, so they carry up to ~33% relative
// error. That is ample for SLO verdicts over order-of-magnitude
// thresholds, which is what the type exists for.
type LatencyHist struct {
	buckets [latencyBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// latencyBucket maps a duration to its bucket index.
//
//drtplint:hotpath
func latencyBucket(d time.Duration) int {
	if d <= 0 {
		return 0
	}
	return bits.Len64(uint64(d))
}

// latencyBound returns bucket b's upper bound in seconds (exclusive):
// 2^b nanoseconds.
func latencyBound(b int) float64 {
	return math.Ldexp(1e-9, b)
}

// latencyMid returns a representative duration for bucket b: the
// midpoint 1.5 * 2^(b-1) ns of its [2^(b-1), 2^b) range.
func latencyMid(b int) time.Duration {
	if b <= 0 {
		return 0
	}
	return time.Duration(3 << (b - 1) >> 1)
}

// Observe records one duration (non-positive durations land in bucket 0).
//
//drtplint:hotpath
func (h *LatencyHist) Observe(d time.Duration) {
	if h == nil {
		return
	}
	h.buckets[latencyBucket(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// ObserveSince records the elapsed wall time since start.
//
//drtplint:hotpath
func (h *LatencyHist) ObserveSince(start time.Time) {
	h.Observe(time.Since(start))
}

// add merges n observations of duration d in one step; the runtime
// sampler uses it to fold runtime/metrics histogram deltas in bulk.
//
//drtplint:hotpath
func (h *LatencyHist) add(d time.Duration, n int64) {
	if h == nil || n <= 0 {
		return
	}
	h.buckets[latencyBucket(d)].Add(n)
	h.count.Add(n)
	h.sum.Add(int64(d) * n)
}

// Count returns the number of observations. A nil histogram reads zero.
func (h *LatencyHist) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *LatencyHist) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) by nearest rank over
// the bucket midpoints. It returns 0 when the histogram is empty.
func (h *LatencyHist) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for b := 0; b < latencyBuckets; b++ {
		cum += h.buckets[b].Load()
		if cum >= rank {
			return latencyMid(b)
		}
	}
	return latencyMid(latencyBuckets - 1)
}

// CountOver returns how many observations fell in buckets strictly above
// the one containing d — a conservative (under-counting by at most one
// bucket) tally of observations exceeding d, used for error-budget burn.
func (h *LatencyHist) CountOver(d time.Duration) int64 {
	if h == nil {
		return 0
	}
	over := int64(0)
	for b := latencyBucket(d) + 1; b < latencyBuckets; b++ {
		over += h.buckets[b].Load()
	}
	return over
}

// write renders the histogram in Prometheus text format. Cumulative
// bucket lines are emitted only where the count advances (plus +Inf), so
// the 64-bucket layout does not bloat the exposition.
func (h *LatencyHist) write(w io.Writer, name string, labels, values []string) error {
	cum := int64(0)
	for b := 0; b < latencyBuckets; b++ {
		n := h.buckets[b].Load()
		if n == 0 {
			continue
		}
		cum += n
		le := fmt.Sprintf("%g", latencyBound(b))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, values, "+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", name, labelString(labels, values, ""), h.Sum().Seconds()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labelString(labels, values, ""), h.Count())
	return err
}

// Latency returns the unlabeled log2 latency histogram with the given
// name, registering it on first use. A nil registry returns a nil
// (no-op) histogram.
func (r *Registry) Latency(name, help string) *LatencyHist {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindLatency, nil, nil).child(nil).(*LatencyHist)
}

// LatencyVec is a log2 latency histogram family keyed by label values.
type LatencyVec struct{ f *family }

// LatencyVec returns the labeled latency family with the given name.
func (r *Registry) LatencyVec(name, help string, labels ...string) *LatencyVec {
	if r == nil {
		return nil
	}
	return &LatencyVec{f: r.family(name, help, kindLatency, labels, nil)}
}

// With returns the child histogram for the label values, creating it on
// first use. Hot paths must resolve children once and keep the handle:
// the handle's Observe is allocation-free, the lookup is not.
func (v *LatencyVec) With(values ...string) *LatencyHist {
	if v == nil {
		return nil
	}
	return v.f.child(values).(*LatencyHist)
}
