package sim_test

import (
	"testing"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/sim"
)

func TestRunWithFailureSchedule(t *testing.T) {
	net := smallNetwork(t)
	sc := smallScenario(t, 0.3)
	schedule := []sim.FailureEvent{
		{Time: 50, Edge: 0, Repair: 70},
		{Time: 60, Edge: 5, Repair: 90},
		{Time: 80, Edge: 11},
	}
	res, err := sim.Run(net, routing.NewDLSR(), sc, sim.Config{
		Warmup:          40,
		FailureSchedule: schedule,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailuresApplied != 3 {
		t.Fatalf("failures applied = %d", res.FailuresApplied)
	}
	if res.FailureAffected == 0 {
		t.Fatal("no connections affected by scheduled failures")
	}
	if res.Switched+res.Dropped != res.FailureAffected {
		t.Fatalf("switched %d + dropped %d != affected %d",
			res.Switched, res.Dropped, res.FailureAffected)
	}
	if res.Availability <= 0 || res.Availability > 1 {
		t.Fatalf("availability = %v", res.Availability)
	}
	// Edge 0 and 5 are repaired, edge 11 stays down.
	if got := net.NumFailedLinks(); got != 2 {
		t.Fatalf("failed links at end = %d, want 2 (one unrepaired edge)", got)
	}
}

func TestRunFailureScheduleVsNoFailures(t *testing.T) {
	sc := smallScenario(t, 0.3)
	clean, err := sim.Run(smallNetwork(t), routing.NewDLSR(), sc, sim.Config{Warmup: 40})
	if err != nil {
		t.Fatal(err)
	}
	if clean.FailuresApplied != 0 || clean.Dropped != 0 || clean.Availability != 1 {
		t.Fatalf("clean run shows failure effects: %+v", clean)
	}
}

func TestRunReactiveSweeps(t *testing.T) {
	net := smallNetwork(t)
	sc := smallScenario(t, 0.3)
	res, err := sim.Run(net, routing.NewNoBackup(), sc, sim.Config{
		Warmup:       40,
		EvalInterval: 20,
		Reactive:     true,
		ManagerOpts:  []drtp.ManagerOption{drtp.WithOptionalBackup()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FTValid || res.FaultTolerance <= 0 {
		t.Fatalf("reactive FT = %v (valid %v)", res.FaultTolerance, res.FTValid)
	}
	// Reactive evaluation reports only recoveries and contention.
	if res.NoBackup != 0 || res.BackupHit != 0 {
		t.Fatalf("unexpected tallies: %+v", res)
	}
}

func TestRunPairSamples(t *testing.T) {
	net := smallNetwork(t)
	sc := smallScenario(t, 0.3)
	res, err := sim.Run(net, routing.NewDLSR(), sc, sim.Config{
		Warmup:       40,
		EvalInterval: 20,
		PairSamples:  100,
		PairSeed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.PairFTValid || res.PairAffected == 0 {
		t.Fatalf("pair sweep missing: %+v", res)
	}
	if res.PairFaultTolerance > res.FaultTolerance {
		t.Fatalf("double-failure FT %v exceeds single-failure FT %v",
			res.PairFaultTolerance, res.FaultTolerance)
	}
}

func TestFailureScheduleDeterministic(t *testing.T) {
	sc := smallScenario(t, 0.3)
	schedule := []sim.FailureEvent{{Time: 50, Edge: 3, Repair: 80}}
	run := func() *sim.Result {
		res, err := sim.Run(smallNetwork(t), routing.NewDLSR(), sc, sim.Config{
			Warmup:          40,
			FailureSchedule: schedule,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Switched != b.Switched || a.Dropped != b.Dropped || a.Stats.Accepted != b.Stats.Accepted {
		t.Fatal("destructive runs diverged for identical inputs")
	}
}

func TestRunQoSBound(t *testing.T) {
	sc := smallScenario(t, 0.3)
	bounded, err := sim.Run(smallNetwork(t), routing.NewDLSR(), sc, sim.Config{
		Warmup: 40, EvalInterval: 20, QoSBound: true, QoSSlack: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	free, err := sim.Run(smallNetwork(t), routing.NewDLSR(), sc, sim.Config{
		Warmup: 40, EvalInterval: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.AvgBackupHops > free.AvgBackupHops {
		t.Fatalf("bounded backups longer: %v vs %v", bounded.AvgBackupHops, free.AvgBackupHops)
	}
	if bounded.FaultTolerance >= free.FaultTolerance {
		t.Fatalf("zero-slack FT %v >= unbounded %v", bounded.FaultTolerance, free.FaultTolerance)
	}
}
