package sim_test

import (
	"testing"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/flood"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/sim"
	"github.com/rtcl/drtp/internal/telemetry"
	"github.com/rtcl/drtp/internal/topology"
)

func smallNetwork(t *testing.T) *drtp.Network {
	t.Helper()
	g, err := topology.Waxman(topology.WaxmanConfig{Nodes: 20, AvgDegree: 3, MinDegree: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func smallScenario(t *testing.T, lambda float64) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.Generate(scenario.Config{
		Nodes:    20,
		Lambda:   lambda,
		Duration: 120,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestRunBasics(t *testing.T) {
	net := smallNetwork(t)
	sc := smallScenario(t, 0.2)
	res, err := sim.Run(net, routing.NewDLSR(), sc, sim.Config{Warmup: 40, EvalInterval: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "D-LSR" {
		t.Fatalf("scheme = %q", res.Scheme)
	}
	if res.Stats.Requests != int64(sc.NumArrivals()) {
		t.Fatalf("requests = %d, arrivals = %d", res.Stats.Requests, sc.NumArrivals())
	}
	if res.Stats.Accepted == 0 || res.AcceptedInWindow == 0 {
		t.Fatal("nothing accepted")
	}
	if res.AcceptedInWindow > res.Stats.Accepted {
		t.Fatal("window accepted exceeds total")
	}
	if res.Sweeps == 0 || !res.FTValid {
		t.Fatalf("sweeps=%d ftValid=%v", res.Sweeps, res.FTValid)
	}
	if res.FaultTolerance <= 0 || res.FaultTolerance > 1 {
		t.Fatalf("fault tolerance = %v", res.FaultTolerance)
	}
	if res.AvgActive <= 0 || res.AvgLoad <= 0 || res.AvgLoad > 1 {
		t.Fatalf("avgActive=%v avgLoad=%v", res.AvgActive, res.AvgLoad)
	}
	if res.AvgPrimaryHops <= 0 || res.AvgBackupHops <= 0 {
		t.Fatalf("hop averages: %v %v", res.AvgPrimaryHops, res.AvgBackupHops)
	}
	if got := res.Affected - res.Recovered - res.NoBackup - res.BackupHit - res.Contention; got != 0 {
		t.Fatalf("outcome tallies do not add up: %d left", got)
	}
	if res.EndTime <= 0 {
		t.Fatal("end time missing")
	}
}

func TestRunDeterministic(t *testing.T) {
	sc := smallScenario(t, 0.2)
	a, err := sim.Run(smallNetwork(t), routing.NewDLSR(), sc, sim.Config{Warmup: 40, EvalInterval: 10})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.Run(smallNetwork(t), routing.NewDLSR(), sc, sim.Config{Warmup: 40, EvalInterval: 10})
	if err != nil {
		t.Fatal(err)
	}
	if a.FaultTolerance != b.FaultTolerance || a.AcceptedInWindow != b.AcceptedInWindow ||
		a.AvgActive != b.AvgActive {
		t.Fatal("identical runs diverged")
	}
}

func TestRunEvalDisabled(t *testing.T) {
	res, err := sim.Run(smallNetwork(t), routing.NewDLSR(), smallScenario(t, 0.2), sim.Config{Warmup: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sweeps != 0 || res.FTValid {
		t.Fatalf("sweeps=%d ftValid=%v with eval disabled", res.Sweeps, res.FTValid)
	}
}

func TestRunEndTimeTruncates(t *testing.T) {
	full, err := sim.Run(smallNetwork(t), routing.NewDLSR(), smallScenario(t, 0.2), sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := sim.Run(smallNetwork(t), routing.NewDLSR(), smallScenario(t, 0.2), sim.Config{EndTime: 60})
	if err != nil {
		t.Fatal(err)
	}
	if cut.Stats.Requests >= full.Stats.Requests {
		t.Fatalf("truncated run saw %d requests, full %d", cut.Stats.Requests, full.Stats.Requests)
	}
	if cut.EndTime != 60 {
		t.Fatalf("end time = %v", cut.EndTime)
	}
}

func TestRunNodeCountMismatch(t *testing.T) {
	sc, err := scenario.Generate(scenario.Config{Nodes: 99, Lambda: 0.1, Duration: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(smallNetwork(t), routing.NewDLSR(), sc, sim.Config{}); err == nil {
		t.Fatal("node-count mismatch accepted")
	}
}

func TestRunNegativeConfig(t *testing.T) {
	if _, err := sim.Run(smallNetwork(t), routing.NewDLSR(), smallScenario(t, 0.1), sim.Config{Warmup: -1}); err == nil {
		t.Fatal("negative warmup accepted")
	}
}

func TestRunNoBackupBaseline(t *testing.T) {
	res, err := sim.Run(smallNetwork(t), routing.NewNoBackup(), smallScenario(t, 0.2), sim.Config{
		Warmup:      40,
		ManagerOpts: []drtp.ManagerOption{drtp.WithOptionalBackup()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Accepted == 0 {
		t.Fatal("baseline accepted nothing")
	}
	if res.AvgSpareLoad != 0 || res.AvgBackupHops != 0 {
		t.Fatalf("baseline reserved spare: %v %v", res.AvgSpareLoad, res.AvgBackupHops)
	}
}

func TestAcceptRatioInWindow(t *testing.T) {
	var r sim.Result
	if r.AcceptRatioInWindow() != 0 {
		t.Fatal("empty ratio != 0")
	}
	r.RequestsInWindow = 10
	r.AcceptedInWindow = 4
	if r.AcceptRatioInWindow() != 0.4 {
		t.Fatal("ratio wrong")
	}
}

func TestRunEdgeFailureModel(t *testing.T) {
	link, err := sim.Run(smallNetwork(t), routing.NewDLSR(), smallScenario(t, 0.2), sim.Config{
		Warmup: 40, EvalInterval: 20, FailureModel: drtp.LinkFailures,
	})
	if err != nil {
		t.Fatal(err)
	}
	edge, err := sim.Run(smallNetwork(t), routing.NewDLSR(), smallScenario(t, 0.2), sim.Config{
		Warmup: 40, EvalInterval: 20, FailureModel: drtp.EdgeFailures,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Edge failures hit both directions: strictly more affected
	// connections per sweep on any loaded network.
	if edge.Affected <= link.Affected/2 {
		t.Fatalf("edge affected = %d, link affected = %d", edge.Affected, link.Affected)
	}
}

// TestTelemetryReconciliation runs with a ring sink and asserts the
// event stream reconciles exactly with the run's aggregate counters:
// backup-activate events are the P_act-bk numerator, activate + denied
// events its denominator, and establish/reject events match the
// admission stats.
func TestTelemetryReconciliation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme drtp.Scheme
	}{
		{"D-LSR", routing.NewDLSR()},
		{"BF", flood.NewDefault()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			net := smallNetwork(t)
			sc := smallScenario(t, 0.2)
			ring := telemetry.NewRing(1 << 20)
			tr := telemetry.NewTracer(ring)
			res, err := sim.Run(net, tc.scheme, sc, sim.Config{
				Warmup: 40, EvalInterval: 10, Telemetry: tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := ring.Count(telemetry.EvBackupActivate); got != res.Recovered {
				t.Errorf("backup-activate events = %d, Recovered = %d", got, res.Recovered)
			}
			denied := ring.Count(telemetry.EvActivationDenied)
			if got := ring.Count(telemetry.EvBackupActivate) + denied; got != res.Affected {
				t.Errorf("activate+denied events = %d, Affected = %d", got, res.Affected)
			}
			if got := ring.Count(telemetry.EvConnEstablish); got != res.Stats.Accepted {
				t.Errorf("establish events = %d, Accepted = %d", got, res.Stats.Accepted)
			}
			rejects := res.Stats.Rejected + res.Stats.RejectedNoBackup
			if got := ring.Count(telemetry.EvConnReject); got != rejects {
				t.Errorf("reject events = %d, rejections = %d", got, rejects)
			}
			if got := ring.Count(telemetry.EvBackupRegister); got == 0 {
				t.Error("no backup-register events")
			}
			if bf, ok := tc.scheme.(*flood.Scheme); ok {
				if got := ring.Count(telemetry.EvCDPForward); got != bf.Stats().CDPForwards {
					t.Errorf("cdp-forward events = %d, stat = %d", got, bf.Stats().CDPForwards)
				}
			}
			// Event timestamps must follow simulated time.
			evs := ring.Events()
			if len(evs) == 0 || evs[len(evs)-1].T > res.EndTime {
				t.Errorf("last event at t=%v beyond end %v", evs[len(evs)-1].T, res.EndTime)
			}
		})
	}
}
