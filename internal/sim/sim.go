// Package sim replays traffic scenarios against a DR-connection manager
// and measures the paper's evaluation quantities: fault tolerance
// (P_act-bk, via periodic single-link-failure sweeps), accepted-connection
// counts (the capacity-overhead input), and network load.
package sim

import (
	"errors"
	"fmt"
	"sort"

	"github.com/rtcl/drtp/internal/drtp"
	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/scenario"
	"github.com/rtcl/drtp/internal/telemetry"
)

// FailureEvent schedules a destructive edge failure (and optional repair)
// during a run. Unlike the periodic non-destructive sweeps, these
// failures really take links down: affected connections switch to their
// backups or are dropped, and new requests route around the outage until
// the repair time.
type FailureEvent struct {
	// Time is when the edge fails (minutes).
	Time float64
	// Edge is the physical edge that fails (both directions).
	Edge graph.EdgeID
	// Repair is the absolute repair time; zero means never repaired.
	Repair float64
}

// Config controls a simulation run.
type Config struct {
	// Warmup is the simulated time (minutes) before measurement starts;
	// it lets the connection population reach steady state.
	Warmup float64
	// EvalInterval is the period (minutes) of failure-sweep evaluations
	// after warmup. Zero disables fault-tolerance measurement.
	EvalInterval float64
	// FailureModel selects link or edge failures for the sweeps; the
	// default is the paper's single-unidirectional-link model.
	FailureModel drtp.FailureModel
	// EndTime truncates the run; zero means run to the last event.
	EndTime float64
	// ManagerOpts configures the manager (e.g. drtp.WithOptionalBackup
	// for the no-backup baseline).
	ManagerOpts []drtp.ManagerOption
	// Reactive evaluates recovery with the reactive (re-route on demand)
	// policy instead of backup activation. Use with the no-backup scheme
	// and optional-backup admission.
	Reactive bool
	// PairSamples, when positive, additionally evaluates this many random
	// simultaneous two-link failures per epoch (seeded by PairSeed); the
	// results land in the Pair* fields of Result.
	PairSamples int
	PairSeed    int64
	// FailureSchedule lists destructive failures to apply during the run.
	FailureSchedule []FailureEvent
	// Chaos, when non-nil, applies a fault-injection schedule to the run:
	// signal faults make the manager's signalling round trips lossy
	// (seeded from the schedule), and the schedule's crashes, partitions
	// and edge faults become destructive edge outages on the timeline,
	// each emitting a fault-injected telemetry event. Falls back to the
	// scenario's bundled schedule when nil.
	Chaos *faultinject.Schedule
	// QoSBound, when true, gives every request the delay bound
	// MaxHops = minimum-hop-distance(src,dst) + QoSSlack, constraining
	// both channels (the paper's end-to-end delay QoS).
	QoSBound bool
	QoSSlack int
	// Telemetry, when non-nil, receives protocol events from the run. The
	// tracer's clock is bound to simulated time (minutes) for the duration
	// of the run, so event timestamps line up with the scenario timeline.
	Telemetry *telemetry.Tracer
	// CollectRecovery records a per-connection recovery-latency sample for
	// every destructive failure (drtp.WithRecoveryLatency); the samples
	// land in Result.Recovery. Off by default — sampling allocates.
	CollectRecovery bool
}

// Result aggregates one run's measurements.
type Result struct {
	// Scheme is the routing scheme's name.
	Scheme string
	// Stats holds the manager's admission counters for the whole run.
	Stats drtp.Stats
	// AcceptedInWindow counts connections accepted after warmup: the
	// quantity compared against the no-backup baseline for capacity
	// overhead.
	AcceptedInWindow int64
	// RequestsInWindow counts requests arriving after warmup.
	RequestsInWindow int64
	// FaultTolerance is P_act-bk aggregated over all failure sweeps,
	// weighted by affected connections. Valid only if FTValid.
	FaultTolerance float64
	FTValid        bool
	// Affected, Recovered, NoBackup, BackupHit, Contention sum the sweep
	// outcome tallies behind FaultTolerance.
	Affected   int64
	Recovered  int64
	NoBackup   int64
	BackupHit  int64
	Contention int64
	// Sweeps is the number of failure-sweep epochs evaluated.
	Sweeps int
	// PairAffected/PairRecovered/PairFaultTolerance measure the optional
	// simultaneous two-link-failure sweeps (Config.PairSamples).
	PairAffected       int64
	PairRecovered      int64
	PairFaultTolerance float64
	PairFTValid        bool
	// Destructive-failure tallies (Config.FailureSchedule): applied
	// failures, connections affected/switched/dropped, and backup
	// channels re-established after switching.
	FailuresApplied int
	FailureAffected int64
	Switched        int64
	Dropped         int64
	Reestablished   int64
	// Availability is 1 - Dropped/Accepted over the whole run (1 when
	// nothing was accepted or no failures were scheduled).
	Availability float64
	// Recovery holds the per-connection recovery-latency samples of the
	// run's destructive failures (Config.CollectRecovery), in failure
	// order. Empty when collection is off.
	Recovery []drtp.RecoveryLatency
	// AvgActive is the time-averaged number of active connections after
	// warmup.
	AvgActive float64
	// AvgLoad is the time-averaged fraction of total link capacity
	// reserved by primary channels after warmup.
	AvgLoad float64
	// AvgSpareLoad is the time-averaged fraction of total link capacity
	// reserved as spare (backup) resources after warmup.
	AvgSpareLoad float64
	// AvgBackupHops / AvgPrimaryHops are establishment-time route length
	// averages over accepted connections with the respective channel.
	AvgPrimaryHops float64
	AvgBackupHops  float64
	// EndTime is the simulated time at which the run stopped.
	EndTime float64
}

// AcceptRatioInWindow returns accepted/requests within the measurement
// window.
func (r *Result) AcceptRatioInWindow() float64 {
	if r.RequestsInWindow == 0 {
		return 0
	}
	return float64(r.AcceptedInWindow) / float64(r.RequestsInWindow)
}

// Run replays the scenario on a fresh manager over net with the given
// scheme. The network must be freshly constructed (no reservations); the
// run mutates its link-state database.
func Run(net *drtp.Network, schm drtp.Scheme, sc *scenario.Scenario, cfg Config) (*Result, error) {
	if sc.Config.Nodes != net.Graph().NumNodes() {
		return nil, fmt.Errorf("sim: scenario has %d nodes, network has %d",
			sc.Config.Nodes, net.Graph().NumNodes())
	}
	if cfg.EvalInterval < 0 || cfg.Warmup < 0 {
		return nil, errors.New("sim: negative warmup or eval interval")
	}

	chaos := cfg.Chaos
	if chaos == nil {
		chaos = sc.Chaos
	}
	if chaos != nil {
		if err := chaos.Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
	}

	opts := cfg.ManagerOpts
	if chaos != nil && chaos.Signal != nil {
		opts = append(append([]drtp.ManagerOption(nil), opts...),
			drtp.WithSignalFaults(chaos.Signal.Drop, chaos.Signal.Retries, chaos.Seed))
	}
	if cfg.CollectRecovery {
		opts = append(append([]drtp.ManagerOption(nil), opts...), drtp.WithRecoveryLatency())
	}
	if cfg.Telemetry != nil {
		opts = append(append([]drtp.ManagerOption(nil), opts...), drtp.WithTelemetry(cfg.Telemetry))
		// Schemes that generate their own traffic (bounded flooding)
		// expose SetTracer for CDP-level events.
		if ts, ok := schm.(interface{ SetTracer(*telemetry.Tracer) }); ok {
			ts.SetTracer(cfg.Telemetry)
		}
	}
	mgr := drtp.NewManager(net, schm, opts...)
	res := &Result{Scheme: schm.Name()}

	end := cfg.EndTime
	if end == 0 {
		end = sc.EndTime()
	}
	nextEval := cfg.Warmup
	if cfg.EvalInterval == 0 {
		nextEval = end + 1 // never
	}

	var (
		now            float64
		integActive    float64 // ∫ active dt after warmup
		integPrime     float64 // ∫ primeBW dt after warmup
		integSpare     float64 // ∫ spareBW dt after warmup
		integStart     = cfg.Warmup
		lastT          = cfg.Warmup
		sumPrimaryHops int64
		numPrimary     int64
		sumBackupHops  int64
		numBackup      int64
	)
	if cfg.Telemetry != nil {
		cfg.Telemetry.SetClock(func() float64 { return now })
	}
	db := net.DB()
	totalCap := float64(db.TotalCapacity())

	integrate := func(t float64) {
		if t <= lastT {
			return
		}
		dt := t - lastT
		integActive += dt * float64(mgr.NumActive())
		integPrime += dt * float64(db.TotalPrimeBW())
		integSpare += dt * float64(db.TotalSpareBW())
		lastT = t
	}

	model := cfg.FailureModel
	if model == 0 {
		model = drtp.LinkFailures
	}
	pairSeed := cfg.PairSeed
	runEvals := func(upto float64) {
		for nextEval <= upto {
			var outcomes []drtp.FailureOutcome
			if cfg.Reactive {
				outcomes = mgr.SweepFailuresReactive()
			} else {
				outcomes = mgr.SweepFailures(model)
			}
			for _, o := range outcomes {
				res.Affected += int64(o.Affected)
				res.Recovered += int64(o.Recovered)
				res.NoBackup += int64(o.NoBackup)
				res.BackupHit += int64(o.BackupHit)
				res.Contention += int64(o.Contention)
			}
			if cfg.PairSamples > 0 {
				pairSeed++
				for _, o := range mgr.SweepLinkPairFailures(cfg.PairSamples, pairSeed) {
					res.PairAffected += int64(o.Affected)
					res.PairRecovered += int64(o.Recovered)
				}
			}
			res.Sweeps++
			// Sample per-link occupancy at each evaluation epoch: reserved
			// primary/spare bandwidth and the backup-multiplexing degree,
			// for the trace-derived occupancy-over-time report.
			if cfg.Telemetry.Enabled() {
				for l := 0; l < net.Graph().NumLinks(); l++ {
					lid := graph.LinkID(l)
					prime, spare := db.PrimeBW(lid), db.SpareBW(lid)
					if prime == 0 && spare == 0 {
						continue
					}
					cfg.Telemetry.LinkState(res.Scheme, l, prime, spare, db.NumBackupsOn(lid))
				}
			}
			nextEval += cfg.EvalInterval
		}
	}

	type timelineItem struct {
		time    float64
		traffic *scenario.Event
		fail    bool
		edge    graph.EdgeID
		// action labels chaos-derived outages ("edge-fail", "crash",
		// "partition") for fault-injected telemetry; empty for plain
		// FailureSchedule entries.
		action string
	}
	timeline := make([]timelineItem, 0, len(sc.Events)+2*len(cfg.FailureSchedule))
	for i := range sc.Events {
		timeline = append(timeline, timelineItem{time: sc.Events[i].Time, traffic: &sc.Events[i]})
	}
	for _, f := range cfg.FailureSchedule {
		timeline = append(timeline, timelineItem{time: f.Time, fail: true, edge: f.Edge})
		if f.Repair > f.Time {
			timeline = append(timeline, timelineItem{time: f.Repair, edge: f.Edge})
		}
	}
	if chaos != nil {
		for _, w := range chaos.EdgeWindows(net.Graph()) {
			timeline = append(timeline, timelineItem{time: w.At, fail: true, edge: w.Edge, action: w.Action})
			if w.Repair > w.At {
				timeline = append(timeline, timelineItem{time: w.Repair, edge: w.Edge, action: w.Action})
			}
		}
	}
	sort.SliceStable(timeline, func(i, j int) bool { return timeline[i].time < timeline[j].time })

	downCount := make(map[graph.EdgeID]int)
	for _, item := range timeline {
		if item.time > end {
			break
		}
		now = item.time
		runEvals(now)
		if now > cfg.Warmup {
			integrate(now)
		}
		if item.traffic == nil {
			if item.action != "" && cfg.Telemetry.Enabled() {
				fwd, _ := net.Graph().EdgeLinks(item.edge)
				action := item.action
				if !item.fail {
					action = "repair"
				}
				cfg.Telemetry.FaultInjected(-1, int(fwd), -1, action)
			}
			if item.fail {
				// downCount tolerates overlapping chaos windows on one edge:
				// only the first fail applies, only the last repair restores.
				downCount[item.edge]++
				if downCount[item.edge] > 1 {
					continue
				}
				rec := mgr.ApplyEdgeFailure(item.edge)
				res.FailuresApplied++
				res.FailureAffected += int64(rec.Affected)
				res.Switched += int64(rec.Switched)
				res.Dropped += int64(rec.Dropped)
				res.Reestablished += int64(rec.BackupsReestablished)
			} else {
				if downCount[item.edge] > 0 {
					downCount[item.edge]--
				}
				if downCount[item.edge] > 0 {
					continue
				}
				net.RestoreEdge(item.edge)
			}
			continue
		}
		ev := *item.traffic
		switch ev.Kind {
		case scenario.Arrival:
			if now > cfg.Warmup {
				res.RequestsInWindow++
			}
			req := drtp.Request{ID: ev.Conn, Src: ev.Src, Dst: ev.Dst}
			if cfg.QoSBound {
				if d := net.Distances().Hops(ev.Src, ev.Dst); d > 0 {
					req.MaxHops = d + cfg.QoSSlack
				}
			}
			conn, err := mgr.Establish(req)
			if err != nil {
				if !errors.Is(err, drtp.ErrNoRoute) && !errors.Is(err, drtp.ErrNoBackup) &&
					!errors.Is(err, drtp.ErrSignalTimeout) {
					return nil, fmt.Errorf("sim: establish %d: %w", ev.Conn, err)
				}
				continue
			}
			if now > cfg.Warmup {
				res.AcceptedInWindow++
			}
			sumPrimaryHops += int64(conn.Primary.Hops())
			numPrimary++
			if conn.HasBackup() {
				sumBackupHops += int64(conn.Backup().Hops())
				numBackup++
			}
		case scenario.Departure:
			if _, active := mgr.Get(ev.Conn); active {
				if err := mgr.Release(ev.Conn); err != nil {
					return nil, fmt.Errorf("sim: release %d: %w", ev.Conn, err)
				}
			}
		default:
			return nil, fmt.Errorf("sim: unknown event kind %d", ev.Kind)
		}
	}
	runEvals(end)
	integrate(end)

	res.Stats = mgr.Stats()
	res.EndTime = end
	if cfg.CollectRecovery {
		res.Recovery = mgr.TakeRecoveryLatencies()
	}
	if window := end - integStart; window > 0 {
		res.AvgActive = integActive / window
		if totalCap > 0 {
			res.AvgLoad = integPrime / window / totalCap
			res.AvgSpareLoad = integSpare / window / totalCap
		}
	}
	if res.Affected > 0 {
		res.FaultTolerance = float64(res.Recovered) / float64(res.Affected)
		res.FTValid = true
	}
	if res.PairAffected > 0 {
		res.PairFaultTolerance = float64(res.PairRecovered) / float64(res.PairAffected)
		res.PairFTValid = true
	}
	if numPrimary > 0 {
		res.AvgPrimaryHops = float64(sumPrimaryHops) / float64(numPrimary)
	}
	if numBackup > 0 {
		res.AvgBackupHops = float64(sumBackupHops) / float64(numBackup)
	}
	res.Availability = 1
	if res.Stats.Accepted > 0 {
		res.Availability = 1 - float64(res.Dropped)/float64(res.Stats.Accepted)
	}
	return res, nil
}
