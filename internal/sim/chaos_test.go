package sim_test

import (
	"reflect"
	"testing"

	"github.com/rtcl/drtp/internal/faultinject"
	"github.com/rtcl/drtp/internal/graph"
	"github.com/rtcl/drtp/internal/routing"
	"github.com/rtcl/drtp/internal/sim"
	"github.com/rtcl/drtp/internal/telemetry"
)

func chaosSchedule(g *graph.Graph) *faultinject.Schedule {
	// The edge fault must name an edge the graph actually has; take the
	// first one.
	fwd, _ := g.EdgeLinks(0)
	l := g.Link(fwd)
	return &faultinject.Schedule{
		Seed:       9,
		TimeUnit:   "minutes",
		Signal:     &faultinject.SignalFaults{Drop: 0.1, Retries: 3},
		Crashes:    []faultinject.CrashEvent{{Node: 3, At: 50, Restart: 70}},
		Partitions: []faultinject.Partition{{Group: []int{0, 1, 2}, At: 80, Heal: 95}},
		Edges:      []faultinject.EdgeFault{{From: int(l.From), To: int(l.To), At: 60, Repair: 75}},
	}
}

// TestRunWithChaosSchedule drives the simulator's destructive timeline
// from a chaos schedule: edge faults, a crash (failing the node's
// incident edges) and a partition (cutting the crossing edges), all with
// repairs, plus lossy signalling with retries.
func TestRunWithChaosSchedule(t *testing.T) {
	net := smallNetwork(t)
	sc := smallScenario(t, 0.3)
	buf := telemetry.NewBuffer()
	res, err := sim.Run(net, routing.NewDLSR(), sc, sim.Config{
		Warmup:    40,
		Chaos:     chaosSchedule(net.Graph()),
		Telemetry: telemetry.NewTracer(buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailuresApplied == 0 {
		t.Fatal("chaos schedule applied no failures")
	}
	if res.Switched+res.Dropped != res.FailureAffected {
		t.Fatalf("switched %d + dropped %d != affected %d",
			res.Switched, res.Dropped, res.FailureAffected)
	}
	if res.Stats.SignalRetries == 0 {
		t.Fatal("10% signalling loss produced no retries")
	}
	// Everything is repaired or healed by the end of the schedule.
	if got := net.NumFailedLinks(); got != 0 {
		t.Fatalf("failed links at end = %d, want 0 (all windows heal)", got)
	}
	// The trace records each applied fault window with its action label.
	actions := map[string]int{}
	for _, e := range telemetry.BuildTrace(buf.Events()).Faults {
		actions[e.Reason]++
	}
	for _, want := range []string{"crash", "partition", "edge-fail", "repair"} {
		if actions[want] == 0 {
			t.Fatalf("no %q fault event in trace; saw %v", want, actions)
		}
	}
}

// TestRunChaosFromScenario checks the fallback: a schedule bundled in
// the scenario file applies when the config carries none, and an
// explicit config schedule wins over the bundled one.
func TestRunChaosFromScenario(t *testing.T) {
	net := smallNetwork(t)
	sc := smallScenario(t, 0.3)
	sc.Chaos = chaosSchedule(net.Graph())
	res, err := sim.Run(net, routing.NewDLSR(), sc, sim.Config{Warmup: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.FailuresApplied == 0 {
		t.Fatal("scenario-bundled schedule ignored")
	}

	// An explicit quiet schedule overrides the scenario's destructive one.
	quiet := &faultinject.Schedule{Seed: 1}
	res2, err := sim.Run(smallNetwork(t), routing.NewDLSR(), sc, sim.Config{
		Warmup: 40,
		Chaos:  quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.FailuresApplied != 0 {
		t.Fatalf("config override ignored: %d failures applied", res2.FailuresApplied)
	}
}

// TestRunChaosDeterministic replays the identical chaos run twice and
// requires identical results and telemetry streams.
func TestRunChaosDeterministic(t *testing.T) {
	run := func() (*sim.Result, []telemetry.Event) {
		buf := telemetry.NewBuffer()
		net := smallNetwork(t)
		res, err := sim.Run(net, routing.NewDLSR(), smallScenario(t, 0.3), sim.Config{
			Warmup:    40,
			Chaos:     chaosSchedule(net.Graph()),
			Telemetry: telemetry.NewTracer(buf),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, buf.Events()
	}
	r1, e1 := run()
	r2, e2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("same schedule, different results:\n%+v\n%+v", r1, r2)
	}
	if !reflect.DeepEqual(e1, e2) {
		t.Fatalf("same schedule, different event streams: %d vs %d events", len(e1), len(e2))
	}
}
