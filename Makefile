# Development entry points. Everything is stdlib-only Go; no external
# tools are required beyond the toolchain.

GO ?= go

.PHONY: all build test race bench bench-json vet fmt lint lint-test experiments quick clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# One reproduction per experiment benchmark, three samples each, written
# to BENCH_<date>.json for cross-commit comparison (see scripts/bench.sh).
bench-json:
	GO="$(GO)" ./scripts/bench.sh

vet:
	$(GO) vet ./...

# Domain-specific static analysis (tools/drtplint, its own stdlib-only
# module): determinism, niltracer, protoroundtrip, cvclone, lockguard.
# Runs over every package of the main module; exits non-zero on findings.
lint:
	$(GO) -C tools/drtplint run .

# The analyzers' own fixture tests.
lint-test:
	$(GO) -C tools/drtplint test ./...

fmt:
	gofmt -w .

# Full-scale reproduction of every table and figure (several minutes).
experiments:
	$(GO) run ./cmd/drtpsim -exp all -degree 3
	$(GO) run ./cmd/drtpsim -exp all -degree 4

# Scaled-down smoke run of the whole evaluation (~1 minute).
quick:
	$(GO) run ./cmd/drtpsim -exp all -quick

clean:
	$(GO) clean ./...
