# Development entry points. Everything is stdlib-only Go; no external
# tools are required beyond the toolchain.

GO ?= go

.PHONY: all build test race bench bench-json vet fmt lint lint-test lint-json lint-self lint-list experiments quick clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

# One reproduction per experiment benchmark, three samples each, written
# to BENCH_<date>.json for cross-commit comparison (see scripts/bench.sh).
bench-json:
	GO="$(GO)" ./scripts/bench.sh

vet:
	$(GO) vet ./...

# Domain-specific static analysis (tools/drtplint, its own stdlib-only
# module). The analyzer inventory lives in one place — `make lint-list`
# (drtplint -list) — so it is never repeated here. Runs over every
# package of the main module; exits non-zero on findings.
DRTPLINT := bin/drtplint
DRTPLINT_SRC := $(shell find tools/drtplint -name '*.go' -not -path '*/testdata/*')

$(DRTPLINT): $(DRTPLINT_SRC) tools/drtplint/go.mod
	$(GO) -C tools/drtplint build -o $(CURDIR)/$(DRTPLINT) .

lint: $(DRTPLINT)
	./$(DRTPLINT) -timings

# Machine-readable findings + per-analyzer timings (CI uploads this).
lint-json: $(DRTPLINT)
	./$(DRTPLINT) -json -o drtplint.json -timings

# The suite applied to its own source: the tool must hold itself to the
# concurrency and suppression contracts it enforces.
lint-self: $(DRTPLINT)
	./$(DRTPLINT) -module tools/drtplint

# The authoritative analyzer inventory.
lint-list: $(DRTPLINT)
	./$(DRTPLINT) -list

# The analyzers' own fixture tests.
lint-test:
	$(GO) -C tools/drtplint test ./...

fmt:
	gofmt -w .

# Full-scale reproduction of every table and figure (several minutes).
experiments:
	$(GO) run ./cmd/drtpsim -exp all -degree 3
	$(GO) run ./cmd/drtpsim -exp all -degree 4

# Scaled-down smoke run of the whole evaluation (~1 minute).
quick:
	$(GO) run ./cmd/drtpsim -exp all -quick

clean:
	$(GO) clean ./...
