package drtp_test

import (
	"fmt"

	"github.com/rtcl/drtp"
)

// The theta network: three parallel routes between nodes 0 and 1.
func exampleGraph() *drtp.Graph {
	g, err := drtp.FromEdgeList(5, [][2]int{{0, 1}, {0, 2}, {2, 1}, {0, 3}, {3, 4}, {4, 1}})
	if err != nil {
		panic(err)
	}
	return g
}

// Establishing a dependable connection yields a primary channel and a
// link-disjoint backup channel.
func ExampleNewManager() {
	g := exampleGraph()
	net, _ := drtp.NewNetwork(g, 10, 1)
	mgr := drtp.NewManager(net, drtp.NewDLSR())

	conn, _ := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
	fmt.Println("primary:", conn.Primary.Format(g))
	fmt.Println("backup: ", conn.Backup().Format(g))
	// Output:
	// primary: 0->1
	// backup:  0->2->1
}

// Sweeping every single-link failure yields the paper's P_act-bk.
func ExampleFaultTolerance() {
	g := exampleGraph()
	net, _ := drtp.NewNetwork(g, 10, 1)
	mgr := drtp.NewManager(net, drtp.NewDLSR())
	for id := drtp.ConnID(1); id <= 2; id++ {
		if _, err := mgr.Establish(drtp.Request{ID: id, Src: 0, Dst: 1}); err != nil {
			panic(err)
		}
	}
	ft, ok := drtp.FaultTolerance(mgr.SweepFailures(drtp.LinkFailures))
	fmt.Printf("P_act-bk = %.2f (valid %v)\n", ft, ok)
	// Output:
	// P_act-bk = 1.00 (valid true)
}

// A destructive failure switches affected connections onto their backups
// and re-establishes protection for the new primary.
func ExampleManager_ApplyLinkFailure() {
	g := exampleGraph()
	net, _ := drtp.NewNetwork(g, 10, 1)
	mgr := drtp.NewManager(net, drtp.NewDLSR())
	conn, _ := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})

	out := mgr.ApplyLinkFailure(conn.Primary.Links()[0])
	conn, _ = mgr.Get(1)
	fmt.Println("switched:", out.Switched, "dropped:", out.Dropped)
	fmt.Println("new primary:", conn.Primary.Format(g))
	fmt.Println("new backup: ", conn.Backup().Format(g))
	// Output:
	// switched: 1 dropped: 0
	// new primary: 0->2->1
	// new backup:  0->3->4->1
}

// Requests may carry an end-to-end delay bound in hops; channels that
// cannot meet it are not established.
func ExampleRequest_maxHops() {
	g := exampleGraph()
	net, _ := drtp.NewNetwork(g, 10, 1)
	mgr := drtp.NewManager(net, drtp.NewDLSR())

	// Bound 2: primary 0->1 (1 hop) and backup 0->2->1 (2 hops) both fit.
	conn, _ := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1, MaxHops: 2})
	fmt.Println("bounded backup:", conn.Backup().Format(g))
	// Output:
	// bounded backup: 0->2->1
}

// Scenario files replay identically across schemes, the paper's method
// for fair comparisons.
func ExampleGenerateScenario() {
	sc, _ := drtp.GenerateScenario(drtp.ScenarioConfig{
		Nodes:    20,
		Lambda:   0.2,
		Duration: 60,
		Pattern:  drtp.NT,
		Seed:     1,
	})
	fmt.Println("hot destinations:", len(sc.HotDestinations))
	fmt.Println("deterministic:", sc.NumArrivals() > 0)
	// Output:
	// hot destinations: 10
	// deterministic: true
}
