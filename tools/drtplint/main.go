// Command drtplint is the repo's domain-specific static analysis suite.
// It runs six analyzers that enforce invariants the generic toolchain
// cannot know about: simulation determinism, nil-safe telemetry, wire
// codec round-trip coverage, conflict-vector aliasing, mutex guard
// annotations, and metric naming conventions.
//
// Usage:
//
//	drtplint [-only name[,name]] [packages...]
//
// Packages are import paths inside the github.com/rtcl/drtp module
// ("./..."-style patterns are expanded by make lint). With no arguments
// it lints every package under the module root.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
	"github.com/rtcl/drtp/tools/drtplint/internal/checkers"
)

var analyzers = []*analysis.Analyzer{
	checkers.Determinism,
	checkers.NilTracer,
	checkers.ProtoRoundTrip,
	checkers.CVClone,
	checkers.LockGuard,
	checkers.InstrumentNames,
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: drtplint [-only name,...] [import paths]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		active = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "drtplint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			active = append(active, a)
		}
	}

	loader, err := analysis.NewLoaderFromCwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "drtplint: %v\n", err)
		os.Exit(2)
	}
	loader.IncludeTests = true

	paths := flag.Args()
	if len(paths) == 0 {
		paths, err = modulePackages(loader)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drtplint: %v\n", err)
			os.Exit(2)
		}
	}

	exit := 0
	for _, path := range paths {
		pkg, err := loader.LoadPath(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drtplint: load %s: %v\n", path, err)
			exit = 1
			continue
		}
		for _, a := range active {
			diags, err := loader.Run(a, pkg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "drtplint: %s: %s: %v\n", path, a.Name, err)
				exit = 1
				continue
			}
			for _, d := range diags {
				fmt.Printf("%s: %s: %s\n", pkg.Fset.Position(d.Pos), a.Name, d.Message)
				exit = 1
			}
		}
	}
	os.Exit(exit)
}

// modulePackages walks the module root and returns every import path that
// contains Go files, skipping vendor-ish and tool directories.
func modulePackages(l *analysis.Loader) ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor" || name == "tools") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(l.ModuleDir, path)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, l.ModulePath)
				} else {
					out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
