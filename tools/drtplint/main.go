// Command drtplint is the repo's domain-specific static analysis suite.
// It enforces invariants the generic toolchain cannot know about:
// simulation determinism, nil-safe telemetry, wire codec round-trip
// coverage, conflict-vector aliasing, mutex guard annotations, metric
// naming conventions, lock acquisition order, goroutine lifecycles, and
// hot-path allocation discipline. Run with -list for the authoritative
// analyzer inventory; the Makefile and docs defer to that output rather
// than repeating it.
//
// Usage:
//
//	drtplint [-only name[,name]] [-module dir] [-timings] [-json] [-o file] [packages...]
//
// Packages are import paths inside the analyzed module ("./..."-style
// patterns are expanded by make lint). With no arguments it lints every
// package under the module root. -module roots the loader at an explicit
// module directory (the self-lint target points it at tools/drtplint);
// by default the outermost go.mod above the working directory wins.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
	"github.com/rtcl/drtp/tools/drtplint/internal/checkers"
)

var analyzers = []*analysis.Analyzer{
	checkers.Determinism,
	checkers.NilTracer,
	checkers.ProtoRoundTrip,
	checkers.CVClone,
	checkers.LockGuard,
	checkers.InstrumentNames,
	checkers.LockOrder,
	checkers.GoroLife,
	checkers.HotAlloc,
}

// finding is one diagnostic in the machine-readable report.
type finding struct {
	Position string `json:"position"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// timing is one analyzer's accumulated wall time across all packages.
type timing struct {
	Analyzer string  `json:"analyzer"`
	Millis   float64 `json:"wall_ms"`
	Packages int     `json:"packages"`
}

// report is the -json output document.
type report struct {
	Module   string    `json:"module"`
	Packages []string  `json:"packages"`
	Findings []finding `json:"findings"`
	Timings  []timing  `json:"timings"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	module := flag.String("module", "", "module directory to lint (default: outermost go.mod above cwd)")
	timings := flag.Bool("timings", false, "print per-analyzer wall time to stderr")
	jsonOut := flag.Bool("json", false, "emit a JSON report (findings + timings)")
	outFile := flag.String("o", "", "write the JSON report to this file instead of stdout")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: drtplint [-only name,...] [-module dir] [-timings] [-json [-o file]] [import paths]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-15s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-15s %s\n", a.Name, a.Doc)
		}
		return
	}

	active := analyzers
	if *only != "" {
		byName := make(map[string]*analysis.Analyzer)
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		active = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "drtplint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			active = append(active, a)
		}
	}

	var loader *analysis.Loader
	var err error
	if *module != "" {
		loader, err = analysis.NewLoader(*module)
	} else {
		loader, err = analysis.NewLoaderFromCwd()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "drtplint: %v\n", err)
		os.Exit(2)
	}
	loader.IncludeTests = true

	paths := flag.Args()
	if len(paths) == 0 {
		paths, err = modulePackages(loader)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drtplint: %v\n", err)
			os.Exit(2)
		}
	}

	exit := 0
	rep := report{Module: loader.ModulePath, Packages: paths, Findings: []finding{}}
	wall := make(map[string]*timing)
	for _, a := range analyzers {
		wall[a.Name] = &timing{Analyzer: a.Name}
	}
	for _, path := range paths {
		pkg, err := loader.LoadPath(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "drtplint: load %s: %v\n", path, err)
			exit = 1
			continue
		}
		for _, a := range active {
			start := time.Now()
			diags, err := loader.Run(a, pkg)
			t := wall[a.Name]
			t.Millis += float64(time.Since(start).Microseconds()) / 1000
			t.Packages++
			if err != nil {
				fmt.Fprintf(os.Stderr, "drtplint: %s: %s: %v\n", path, a.Name, err)
				exit = 1
				continue
			}
			for _, d := range diags {
				pos := pkg.Fset.Position(d.Pos)
				fmt.Printf("%s: %s: %s\n", pos, a.Name, d.Message)
				rep.Findings = append(rep.Findings, finding{
					Position: pos.String(), Analyzer: a.Name, Message: d.Message,
				})
				exit = 1
			}
		}
	}

	for _, a := range active {
		rep.Timings = append(rep.Timings, *wall[a.Name])
	}
	if *timings {
		fmt.Fprintf(os.Stderr, "drtplint: per-analyzer wall time over %d packages:\n", len(paths))
		for _, t := range rep.Timings {
			fmt.Fprintf(os.Stderr, "  %-15s %8.1f ms\n", t.Analyzer, t.Millis)
		}
	}
	if *jsonOut {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "drtplint: encoding report: %v\n", err)
			os.Exit(2)
		}
		data = append(data, '\n')
		if *outFile != "" {
			if err := os.WriteFile(*outFile, data, 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "drtplint: %v\n", err)
				os.Exit(2)
			}
		} else {
			os.Stdout.Write(data)
		}
	}
	os.Exit(exit)
}

// modulePackages walks the module root and returns every import path that
// contains Go files, skipping vendor-ish and tool directories. The tools
// subtree is skipped only when it is a nested module (self-lint roots the
// loader at tools/drtplint, where the walk must descend normally).
func modulePackages(l *analysis.Loader) ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleDir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		// A nested go.mod starts a different module; stay out of it.
		if path != l.ModuleDir {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(l.ModuleDir, path)
				if err != nil {
					return err
				}
				if rel == "." {
					out = append(out, l.ModulePath)
				} else {
					out = append(out, l.ModulePath+"/"+filepath.ToSlash(rel))
				}
				break
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}
