package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	// TypeErrors holds soft type-check errors (analysis proceeds anyway).
	TypeErrors []error
}

// Loader parses and type-checks packages without invoking the go command
// for the analyzed module: module-internal import paths are mapped onto
// directories below ModuleDir, fixture paths onto Extra entries, and
// everything else (the standard library) is delegated to the compiler's
// source importer. That keeps drtplint hermetic — it works offline, with
// an empty module cache, from any working directory.
type Loader struct {
	// ModulePath/ModuleDir anchor module-internal import resolution.
	ModulePath string
	ModuleDir  string
	// Extra maps additional import paths to directories (fixture trees).
	Extra map[string]string
	// IncludeTests includes in-package _test.go files of loaded targets.
	IncludeTests bool

	Fset  *token.FileSet
	cache map[string]*types.Package
	std   types.ImporterFrom
	ctx   build.Context
}

// NewLoader creates a loader rooted at the module in dir (its go.mod names
// the module path; dir may be "" for fixture-only loaders).
func NewLoader(dir string) (*Loader, error) {
	l := &Loader{
		ModuleDir: dir,
		Fset:      token.NewFileSet(),
		cache:     make(map[string]*types.Package),
		ctx:       build.Default,
	}
	l.ctx.CgoEnabled = false
	l.std = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	if dir != "" {
		mod, err := modulePath(filepath.Join(dir, "go.mod"))
		if err != nil {
			return nil, err
		}
		l.ModulePath = mod
	}
	return l, nil
}

// NewLoaderFromCwd walks upward from the working directory to the nearest
// go.mod and roots a loader there. When run from tools/drtplint itself the
// walk continues past it to the outer module (drtplint lints the main
// module, not itself).
func NewLoaderFromCwd() (*Loader, error) {
	dir, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	var candidates []string
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			candidates = append(candidates, d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("drtplint: no go.mod found above %s", dir)
	}
	// Outermost module wins: the repo root, not the tool's own module.
	return NewLoader(candidates[len(candidates)-1])
}

// LoadPath loads an import path resolvable by this loader (module-internal
// or an Extra fixture path).
func (l *Loader) LoadPath(path string) (*Package, error) {
	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("drtplint: import path %s is outside the module", path)
	}
	return l.Load(path, dir)
}

// Run applies the analyzer to the package (method form of Run).
func (l *Loader) Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	return Run(a, pkg)
}

// modulePath extracts the module path from a go.mod file.
func modulePath(file string) (string, error) {
	data, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("drtplint: no module directive in %s", file)
}

// dirFor resolves an import path to a source directory, or "" when the
// path is not module-internal (and not a fixture path).
func (l *Loader) dirFor(path string) string {
	if d, ok := l.Extra[path]; ok {
		return d
	}
	if l.ModulePath == "" {
		return ""
	}
	if path == l.ModulePath {
		return l.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
	}
	return ""
}

// Import implements types.Importer for the recursive type-check of
// module-internal dependencies.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if dir := l.dirFor(path); dir != "" {
		pkg, _, err := l.check(path, dir, false, nil)
		if err != nil {
			return nil, err
		}
		return pkg, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}

// sourceFiles lists the package's buildable .go files in dir.
func (l *Loader) sourceFiles(dir string, includeTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		ok, err := l.ctx.MatchFile(dir, name)
		if err != nil || !ok {
			continue
		}
		files = append(files, filepath.Join(dir, name))
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("drtplint: no buildable Go files in %s", dir)
	}
	return files, nil
}

// check parses and type-checks the package in dir. Syntax files and full
// type info are kept only when wantInfo is non-nil.
func (l *Loader) check(path, dir string, includeTests bool, wantInfo *types.Info) (*types.Package, []*ast.File, error) {
	names, err := l.sourceFiles(dir, includeTests)
	if err != nil {
		return nil, nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, nil, err
		}
		// In-package test files share the package clause; external test
		// packages (package foo_test) are out of scope for analysis.
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName && f.Name.Name == pkgName+"_test" {
			continue
		}
		files = append(files, f)
	}
	var softErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { softErrs = append(softErrs, err) },
	}
	pkg, err := conf.Check(path, l.Fset, files, wantInfo)
	if pkg == nil {
		return nil, nil, fmt.Errorf("drtplint: type-checking %s: %v", path, err)
	}
	l.cache[path] = pkg
	_ = softErrs
	return pkg, files, nil
}

// Load parses and type-checks the package in dir as an analysis target.
func (l *Loader) Load(path, dir string) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var softErrs []error
	names, err := l.sourceFiles(dir, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name != pkgName {
			continue
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { softErrs = append(softErrs, err) },
	}
	pkg, _ := conf.Check(path, l.Fset, files, info)
	if pkg == nil {
		return nil, fmt.Errorf("drtplint: cannot type-check %s", path)
	}
	// A fresh Load of an already-imported path must not poison the import
	// cache with a tests-included variant; only cache when absent.
	if _, ok := l.cache[path]; !ok {
		l.cache[path] = pkg
	}
	return &Package{
		Path: path, Dir: dir, Fset: l.Fset, Files: files,
		Pkg: pkg, Info: info, TypeErrors: softErrs,
	}, nil
}

// Run applies the analyzer to the package and returns its diagnostics,
// with ignore directives already filtered out.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a, Path: pkg.Path, Fset: pkg.Fset, Files: pkg.Files,
		Pkg: pkg.Pkg, TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, err
	}
	sup := CollectSuppressions(pkg.Fset, pkg.Files)
	diags := sup.Filter(pkg.Fset, a.Name, pass.Diagnostics())
	// A directive without a justification is a finding in its own right.
	diags = append(diags, sup.BareDirectives(a.Name)...)
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}
