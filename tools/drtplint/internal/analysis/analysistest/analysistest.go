// Package analysistest runs an analyzer over fixture packages under a
// testdata/src tree and checks its diagnostics against // want comments,
// mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A fixture line expecting a diagnostic carries a comment of the form
//
//	code() // want "regexp" "another regexp"
//
// Every diagnostic reported on that line must match one of the patterns,
// and every pattern must be matched by some diagnostic on that line.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// wantRE extracts the quoted patterns of a // want comment.
var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// patRE extracts each "..." pattern from a want payload.
var patRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// Run loads each fixture package below testdata/src, applies the analyzer
// and compares diagnostics with the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	src := filepath.Join(testdata, "src")
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	loader.IncludeTests = true
	loader.Extra = fixtureMap(t, src)

	for _, path := range pkgPaths {
		dir, ok := loader.Extra[path]
		if !ok {
			t.Errorf("fixture package %q not found under %s", path, src)
			continue
		}
		pkg, err := loader.Load(path, dir)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, path, err)
			continue
		}
		checkWants(t, pkg, a.Name, diags)
	}
}

// fixtureMap indexes every package directory below src by its relative
// slash path.
func fixtureMap(t *testing.T, src string) map[string]string {
	t.Helper()
	m := make(map[string]string)
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		entries, err := os.ReadDir(p)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(src, p)
				if err != nil {
					return err
				}
				m[filepath.ToSlash(rel)] = p
				break
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk %s: %v", src, err)
	}
	return m
}

// checkWants verifies diagnostics against the fixture's want comments.
func checkWants(t *testing.T, pkg *analysis.Package, name string, diags []analysis.Diagnostic) {
	t.Helper()
	// key: file:line
	wants := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, pm := range patRE.FindAllStringSubmatch(m[1], -1) {
					pat := strings.ReplaceAll(pm[1], `\"`, `"`)
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", key, pat, err)
						continue
					}
					wants[key] = append(wants[key], &expectation{rx: rx})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", key, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", key, w.rx)
			}
		}
	}
}
