// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that drtplint needs. The repo's
// main module is stdlib-only and the build environment is hermetic, so the
// x/tools multichecker cannot be vendored; this package provides the same
// Analyzer/Pass shape on top of go/ast and go/types, close enough that the
// checkers could be ported to the real framework by changing imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	// Path is the package's import path ("" for ad-hoc fixture packages;
	// fixture paths are their directory below testdata/src).
	Path string
	Fset *token.FileSet
	// Files are the parsed source files, with comments.
	Files []*ast.File
	// Pkg and TypesInfo hold the type-checked form. Type checking is
	// error-tolerant: both are non-nil even for packages with type errors,
	// but objects may be missing (analyzers must tolerate nil lookups).
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diagnostics = append(p.diagnostics, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the findings reported so far, in position order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diagnostics, func(i, j int) bool {
		return p.diagnostics[i].Pos < p.diagnostics[j].Pos
	})
	return p.diagnostics
}

// ignoreDirective matches both the staticcheck-style and the tool-specific
// spelling:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <justification>
//	//drtplint:ignore <analyzer>[,<analyzer>...] <justification>
//
// A directive suppresses ONE matching diagnostic reported on its own line
// or on the line directly below it. The justification is mandatory: a
// bare directive suppresses nothing and is itself reported as a finding
// of every analyzer it names (see Suppressions.BareDirectives).
var ignoreDirective = regexp.MustCompile(`^//(?:drtp)?lint:ignore\s+(\S+)\s+(.+)$`)

// bareIgnoreDirective matches an ignore directive whose justification is
// missing.
var bareIgnoreDirective = regexp.MustCompile(`^//(?:drtp)?lint:ignore\s+(\S+)\s*$`)

// wantSuffix strips a trailing analysistest "// want ..." clause so
// fixtures can pin the bare-ignore diagnostic on the directive's own
// line (a line comment swallows the rest of the line, so the clause
// would otherwise read as the justification).
var wantSuffix = regexp.MustCompile(`\s*//\s*want\s+".*$`)

// ignoreEntry is one parsed ignore directive.
type ignoreEntry struct {
	file     string
	line     int
	pos      token.Pos
	checks   []string
	used     bool
	badEmpty bool
}

// Suppressions indexes a package's ignore directives.
type Suppressions struct {
	entries []*ignoreEntry
}

// CollectSuppressions parses every ignore directive in the files.
func CollectSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := wantSuffix.ReplaceAllString(c.Text, "")
				m := ignoreDirective.FindStringSubmatch(text)
				bare := false
				if m == nil {
					if m = bareIgnoreDirective.FindStringSubmatch(text); m == nil {
						continue
					}
					bare = true
				}
				pos := fset.Position(c.Pos())
				s.entries = append(s.entries, &ignoreEntry{
					file:     pos.Filename,
					line:     pos.Line,
					pos:      c.Pos(),
					checks:   strings.Split(m[1], ","),
					badEmpty: bare,
				})
			}
		}
	}
	return s
}

// BareDirectives returns a diagnostic for every directive that names the
// analyzer but carries no justification. Such directives suppress
// nothing; the missing justification is itself a finding, so an ignore
// can never silently rot into an unexplained one.
func (s *Suppressions) BareDirectives(analyzer string) []Diagnostic {
	if s == nil {
		return nil
	}
	var out []Diagnostic
	for _, e := range s.entries {
		if !e.badEmpty {
			continue
		}
		for _, c := range e.checks {
			if c == analyzer {
				out = append(out, Diagnostic{
					Pos: e.pos,
					Message: fmt.Sprintf("bare ignore directive for %s: a justification is required "+
						"(//drtplint:ignore %s <why this is safe>)", analyzer, analyzer),
				})
				break
			}
		}
	}
	return out
}

// Filter drops diagnostics of the named analyzer that are covered by a
// justified directive, and marks the directives used. Each directive
// suppresses exactly one diagnostic per run: a line that accumulates a
// second finding resurfaces it instead of hiding it behind a stale
// justification.
func (s *Suppressions) Filter(fset *token.FileSet, analyzer string, diags []Diagnostic) []Diagnostic {
	if s == nil || len(s.entries) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for _, e := range s.entries {
			if e.badEmpty || e.used || e.file != pos.Filename {
				continue
			}
			if pos.Line != e.line && pos.Line != e.line+1 {
				continue
			}
			for _, c := range e.checks {
				if c == analyzer {
					e.used = true
					suppressed = true
					break
				}
			}
			if suppressed {
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	return out
}
