package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// spawnsRE matches the goroutine-lifecycle annotation:
//
//	//drtplint:spawns stopped-by=Close
//
// placed on the line above the go statement (or on the enclosing
// function's doc comment when every spawn in it shares one stop path).
// The value names the method or mechanism that terminates the goroutine;
// bare method names are validated against the receiver type.
var spawnsRE = regexp.MustCompile(`^//drtplint:spawns\s+stopped-by=(\S+)`)

// GoroLife enforces the goroutine-lifecycle contract: every go statement
// in non-test code must have a stop path — either declared with a
// //drtplint:spawns stopped-by=... annotation, or structurally evident
// in the spawned body:
//
//   - a receive from a done/stop/quit-style channel or from ctx.Done();
//   - a comma-ok receive (the producer closes the channel to stop it);
//   - ranging over a channel (ends when the channel is closed);
//   - participating in a sync.WaitGroup (someone Waits for it).
//
// Same-package method and function spawn targets are resolved and their
// bodies inspected (two call levels deep); goroutines whose body cannot
// be resolved require the annotation. Test files are exempt.
var GoroLife = &analysis.Analyzer{
	Name: "gorolife",
	Doc: "flags go statements with no declared or structurally detectable " +
		"stop path (goroutine leaks)",
	Run: runGoroLife,
}

func runGoroLife(pass *analysis.Pass) error {
	bodies := recordBodies(pass)
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		directives := spawnDirectiveLines(pass, file)
		for _, fd := range funcDecls(file) {
			docVal := spawnsAnnotation(fd.Doc)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					checkGoStmt(pass, fd, g, directives, docVal, bodies)
				}
				return true
			})
		}
	}
	return nil
}

// spawnDirectiveLines maps source lines to the stopped-by value of a
// spawns directive on that line.
func spawnDirectiveLines(pass *analysis.Pass, file *ast.File) map[int]string {
	out := make(map[int]string)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if m := spawnsRE.FindStringSubmatch(c.Text); m != nil {
				out[pass.Fset.Position(c.Pos()).Line] = m[1]
			}
		}
	}
	return out
}

// spawnsAnnotation extracts a stopped-by value from a doc comment.
func spawnsAnnotation(doc *ast.CommentGroup) string {
	if doc == nil {
		return ""
	}
	for _, c := range doc.List {
		if m := spawnsRE.FindStringSubmatch(c.Text); m != nil {
			return m[1]
		}
	}
	return ""
}

func checkGoStmt(pass *analysis.Pass, fd *ast.FuncDecl, g *ast.GoStmt, directives map[int]string, docVal string, bodies map[*types.Func]*ast.BlockStmt) {
	line := pass.Fset.Position(g.Pos()).Line
	val := directives[line]
	if val == "" {
		val = directives[line-1]
	}
	if val == "" {
		val = docVal
	}
	if val != "" {
		validateStoppedBy(pass, fd, g, val)
		return
	}
	body, resolved := spawnedBody(pass.TypesInfo, g.Call, bodies)
	if !resolved {
		pass.Reportf(g.Pos(), "goroutine lifecycle cannot be determined from the call; "+
			"declare its stop path with //drtplint:spawns stopped-by=...")
		return
	}
	if !hasStopPath(pass, body, 2, map[*ast.BlockStmt]bool{}, bodies) {
		pass.Reportf(g.Pos(), "goroutine has no detectable stop path (done/stop channel, "+
			"ctx.Done, closed-channel receive, range-over-channel, or WaitGroup); "+
			"declare one with //drtplint:spawns stopped-by=...")
	}
}

// validateStoppedBy checks a bare method name against the relevant
// receiver type: the spawned method's receiver when the target is a
// method, otherwise the enclosing method's receiver. Dotted or prose
// values (srv.Close, stdin-EOF) are accepted as documentation.
func validateStoppedBy(pass *analysis.Pass, fd *ast.FuncDecl, g *ast.GoStmt, val string) {
	if strings.ContainsAny(val, ".-/ ") {
		return
	}
	owner := spawnReceiverType(pass.TypesInfo, g.Call)
	if owner == nil {
		owner = declReceiverType(pass.TypesInfo, fd)
	}
	if owner == nil {
		return
	}
	for i := 0; i < owner.NumMethods(); i++ {
		if owner.Method(i).Name() == val {
			return
		}
	}
	pass.Reportf(g.Pos(), "spawns stopped-by=%s: type %s has no method %s",
		val, owner.Obj().Name(), val)
}

// spawnReceiverType returns the named receiver type of a spawned method
// call (go x.run()), or nil.
func spawnReceiverType(info *types.Info, call *ast.CallExpr) *types.Named {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		return namedType(s.Recv())
	}
	return nil
}

// declReceiverType returns the named receiver type of a method decl.
func declReceiverType(info *types.Info, fd *ast.FuncDecl) *types.Named {
	id := recvIdent(fd)
	if id == nil {
		return nil
	}
	obj := info.Defs[id]
	if obj == nil {
		return nil
	}
	return namedType(obj.Type())
}

// spawnedBody resolves the body the goroutine will execute: a function
// literal directly, or a same-package function/method declaration.
func spawnedBody(info *types.Info, call *ast.CallExpr, bodies map[*types.Func]*ast.BlockStmt) (*ast.BlockStmt, bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body, true
	}
	if f := calleeFunc(info, call); f != nil {
		if body := bodies[f]; body != nil {
			return body, true
		}
	}
	return nil, false
}

// recordBodies indexes every function declaration of the pass so spawn
// targets and callees can be resolved to their bodies.
func recordBodies(pass *analysis.Pass) map[*types.Func]*ast.BlockStmt {
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, file := range pass.Files {
		for _, fd := range funcDecls(file) {
			if f, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				bodies[f] = fd.Body
			}
		}
	}
	return bodies
}

// hasStopPath reports whether the body contains a structural stop path,
// following same-package calls up to depth levels deep.
func hasStopPath(pass *analysis.Pass, body *ast.BlockStmt, depth int, seen map[*ast.BlockStmt]bool, bodies map[*types.Func]*ast.BlockStmt) bool {
	if body == nil || seen[body] {
		return false
	}
	seen[body] = true
	info := pass.TypesInfo
	found := false
	var callees []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			// v, ok := <-ch: the sender closes the channel to stop us.
			if len(n.Lhs) == 2 && len(n.Rhs) == 1 {
				if u, ok := ast.Unparen(n.Rhs[0]).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					found = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && lifecycleChan(info, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isNamed(info.TypeOf(sel.X), "sync", "WaitGroup") {
					found = true
					return false
				}
			}
			if depth > 0 {
				if f := calleeFunc(info, n); f != nil {
					if b := bodies[f]; b != nil {
						callees = append(callees, b)
					}
				}
			}
		}
		return !found
	})
	if found {
		return true
	}
	for _, b := range callees {
		if hasStopPath(pass, b, depth-1, seen, bodies) {
			return true
		}
	}
	return false
}

// lifecycleChan reports whether the received-from expression looks like a
// lifecycle channel: ctx.Done()-style calls, or a name containing a
// stop/done/quit marker.
func lifecycleChan(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
		return false
	}
	name := ""
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	}
	name = strings.ToLower(name)
	for _, marker := range []string{"done", "stop", "quit", "close", "shutdown", "exit"} {
		if strings.Contains(name, marker) {
			return true
		}
	}
	return false
}
