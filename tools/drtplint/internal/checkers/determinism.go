package checkers

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// determinismDomain names the package-path segments that form the
// deterministic simulation core: the experiment engine's workers=1-vs-8
// bit-identical contract requires every one of these packages to draw
// randomness from label-derived rng streams, never read the wall clock,
// and never let Go's randomized map iteration order reach results or
// telemetry. The chaos layer (faultinject) is in the domain too: its
// replayability contract hinges on the injected clock and label-split rng
// streams. Live-protocol packages (router, transport, telemetry's wall
// clock) are deliberately outside the domain.
var determinismDomain = map[string]bool{
	"experiments": true,
	"sim":         true,
	"scenario":    true,
	"topology":    true,
	"drtp":        true,
	"flood":       true,
	"routing":     true,
	"lsdb":        true,
	"rng":         true,
	"graph":       true,
	"metrics":     true,
	"bitvec":      true,
	"faultinject": true,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// shared, non-reproducible global source. Constructors (New, NewSource,
// NewZipf) are fine: they build explicit, seedable streams.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true,
}

// Determinism flags nondeterminism sources inside the simulation core:
// wall-clock reads (time.Now/Since/Until), global math/rand draws, and
// map iterations whose order can leak into results or telemetry (an
// append not followed by a sort, a telemetry emission, an output write,
// or a channel send inside the loop body).
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flags wall-clock reads, global math/rand use, and order-leaking " +
		"map iteration in the deterministic simulation packages",
	Run: runDeterminism,
}

// inDeterminismDomain reports whether the package path's last segment is
// part of the deterministic core (fixtures use bare segment names).
func inDeterminismDomain(path string) bool {
	seg := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		seg = path[i+1:]
	}
	return determinismDomain[seg]
}

func runDeterminism(pass *analysis.Pass) error {
	if !inDeterminismDomain(pass.Path) {
		return nil
	}
	for _, file := range pass.Files {
		for _, fd := range funcDecls(file) {
			checkDeterminismFunc(pass, fd)
		}
	}
	return nil
}

func checkDeterminismFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkWallClockAndRand(pass, n)
		case *ast.RangeStmt:
			checkMapRange(pass, fd, n)
		}
		return true
	})
}

// checkWallClockAndRand reports time.Now-style reads and global math/rand
// draws.
func checkWallClockAndRand(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	switch pkgNameOf(pass.TypesInfo, sel.X) {
	case "time":
		switch sel.Sel.Name {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in deterministic simulation code; derive timestamps from simulated time",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		if globalRandFuncs[sel.Sel.Name] {
			pass.Reportf(call.Pos(),
				"global math/rand call rand.%s in deterministic simulation code; draw from a seeded rng.Source",
				sel.Sel.Name)
		}
	}
}

// checkMapRange reports map iterations whose visiting order can reach
// results or telemetry.
func checkMapRange(pass *analysis.Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := types.Unalias(t).Underlying().(*types.Map); !ok {
		return
	}
	// Scan the loop body for order-publishing operations.
	var appendTargets []ast.Expr
	ordered := "" // what leaked the iteration order, for the message
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, r := range n.Rhs {
				call, ok := ast.Unparen(r).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && i < len(n.Lhs) {
					appendTargets = append(appendTargets, n.Lhs[i])
				}
			}
		case *ast.CallExpr:
			if emitsTelemetry(pass.TypesInfo, n) {
				ordered = "a telemetry emission"
				return false
			}
			if writesOutput(pass.TypesInfo, n) {
				ordered = "an output write"
				return false
			}
		case *ast.SendStmt:
			ordered = "a channel send"
			return false
		}
		return true
	})
	if ordered != "" {
		pass.Reportf(rng.Pos(),
			"map iteration order reaches %s; iterate a sorted key slice instead", ordered)
		return
	}
	for _, target := range appendTargets {
		if !sortedLater(pass, fd, target) {
			pass.Reportf(rng.Pos(),
				"map iteration appends to %s without a later sort; order is nondeterministic",
				types.ExprString(target))
			return
		}
	}
}

// emitsTelemetry reports whether the call is a telemetry.Tracer method or
// a Sink.Record call — event order must not depend on map order.
func emitsTelemetry(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(sel.X)
	if isNamed(t, "telemetry", "Tracer") || isNamed(t, "telemetry", "Registry") {
		return true
	}
	return sel.Sel.Name == "Record" && implementsSinkish(t)
}

// implementsSinkish loosely recognizes telemetry sinks: named types from a
// package called telemetry.
func implementsSinkish(t types.Type) bool {
	n := namedType(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "telemetry"
}

// writesOutput recognizes fmt.Fprint*/Print* calls inside the loop body.
func writesOutput(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if pkgNameOf(info, sel.X) != "fmt" {
		return false
	}
	return strings.HasPrefix(sel.Sel.Name, "Fprint") || strings.HasPrefix(sel.Sel.Name, "Print")
}

// sortedLater reports whether the enclosing function later passes the
// append target to a sort.* or slices.Sort* call, which launders the map
// order back into a deterministic one.
func sortedLater(pass *analysis.Pass, fd *ast.FuncDecl, target ast.Expr) bool {
	want := types.ExprString(ast.Unparen(target))
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := pkgNameOf(pass.TypesInfo, sel.X)
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprMentions(arg, want) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprMentions reports whether arg textually contains the target
// expression (covers sort.Slice(x, ...), sort.Sort(byFoo(x)), &x, x[i:]).
func exprMentions(arg ast.Expr, want string) bool {
	if types.ExprString(ast.Unparen(arg)) == want {
		return true
	}
	found := false
	ast.Inspect(arg, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == want {
			found = true
		}
		return !found
	})
	return found
}
