package checkers

import (
	"go/ast"
	"go/types"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// vectorMutators are the bitvec.Vector methods that mutate in place.
var vectorMutators = map[string]bool{
	"Set": true, "Clear": true, "Or": true, "Reset": true,
}

// CVClone flags the aliasing bug class behind conflict-vector corruption:
// a *bitvec.Vector or LSET slice ([]graph.LinkID) received as a parameter
// that is mutated in place and returned, or stored into a longer-lived
// location (struct field, map or slice element) without Clone/copy, and
// methods that hand out internal vector/LSET state by returning a field
// directly.
var CVClone = &analysis.Analyzer{
	Name: "cvclone",
	Doc: "flags bitvec.Vector/APLV/CV values stored or returned after " +
		"in-place mutation, or aliased into long-lived state, without Clone",
	Run: runCVClone,
}

// aliasKind classifies an expression's type for this analyzer.
func aliasKind(t types.Type) string {
	switch {
	case isNamed(t, "bitvec", "Vector"):
		return "bitvec.Vector"
	case isSliceOfNamed(t, "graph", "LinkID"):
		return "LSET slice"
	default:
		return ""
	}
}

func runCVClone(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, fd := range funcDecls(file) {
			checkCVCloneFunc(pass, fd)
		}
	}
	return nil
}

func checkCVCloneFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	// Collect aliased parameters: vectors and LSET slices the caller owns.
	params := make(map[types.Object]string) // obj -> kind
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			for _, name := range f.Names {
				obj := info.Defs[name]
				if obj == nil {
					continue
				}
				if k := aliasKind(obj.Type()); k != "" {
					params[obj] = k
				}
			}
		}
	}

	// Which vector parameters does the body mutate in place?
	mutated := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !vectorMutators[sel.Sel.Name] {
			return true
		}
		if !isNamed(info.TypeOf(sel.X), "bitvec", "Vector") {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil {
				if _, isParam := params[obj]; isParam {
					mutated[obj] = true
				}
			}
		}
		return true
	})

	recv := recvIdent(fd)
	var robj types.Object
	if recv != nil {
		robj = info.Defs[recv]
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				res = ast.Unparen(res)
				// Returning a mutated input aliases caller state.
				if id, ok := res.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && mutated[obj] {
						pass.Reportf(n.Pos(),
							"returns parameter %s after in-place mutation; Clone before mutating or return a fresh vector",
							id.Name)
					}
					continue
				}
				// Returning internal state (recv.field) hands out an alias.
				if sel, ok := res.(*ast.SelectorExpr); ok && robj != nil {
					if isIdentFor(info, sel.X, robj) && fieldObjOf(info, sel) != nil {
						if k := aliasKind(info.TypeOf(sel)); k != "" {
							pass.Reportf(n.Pos(),
								"returns internal %s field %s directly; return a Clone/copy to prevent aliasing",
								k, sel.Sel.Name)
						}
					}
				}
			}
		case *ast.AssignStmt:
			// Storing an aliased parameter into a field/map/slice element
			// keeps caller-owned memory alive in long-lived state.
			for i, rhs := range n.Rhs {
				id, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				obj := info.Uses[id]
				kind, isParam := "", false
				if obj != nil {
					kind, isParam = params[obj], true
					if kind == "" {
						isParam = false
					}
				}
				if !isParam {
					continue
				}
				switch lhs := ast.Unparen(n.Lhs[i]).(type) {
				case *ast.SelectorExpr:
					if fieldObjOf(info, lhs) != nil {
						pass.Reportf(n.Pos(),
							"stores %s parameter %s into a struct field without Clone/copy; the caller still aliases it",
							kind, id.Name)
					}
				case *ast.IndexExpr:
					pass.Reportf(n.Pos(),
						"stores %s parameter %s into a map/slice element without Clone/copy; the caller still aliases it",
						kind, id.Name)
				}
			}
		}
		return true
	})
}
