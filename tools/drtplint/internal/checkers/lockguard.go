package checkers

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// guardedRE matches a "guarded by <mutex>" field annotation, e.g.
//
//	// conns holds active connections; guarded by mu.
var guardedRE = regexp.MustCompile(`guarded by (\w+)`)

// LockGuard enforces "guarded by <mu>" field annotations: within every
// method of the annotated struct, an access to a guarded field must occur
// while the named mutex is held (between <recv>.<mu>.Lock/RLock and the
// matching Unlock, or under a deferred Unlock). Methods whose name ends
// in "Locked" are exempt by convention — their contract is that the
// caller already holds the lock. Constructors (free functions) are not
// checked: the value is not yet shared.
var LockGuard = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "flags accesses to 'guarded by mu' fields outside the mutex's " +
		"critical section",
	Run: runLockGuard,
}

// guardedStruct records one annotated struct.
type guardedStruct struct {
	name   string
	fields map[string]string // guarded field -> mutex field
}

func runLockGuard(pass *analysis.Pass) error {
	structs := collectGuardedStructs(pass)
	if len(structs) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, fd := range funcDecls(file) {
			name := recvTypeName(fd)
			gs := structs[name]
			if gs == nil {
				continue
			}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				continue
			}
			checkLockedAccesses(pass, fd, gs)
		}
	}
	return nil
}

// collectGuardedStructs finds structs with guarded-by annotations and
// validates that the named mutex is a sync.Mutex/RWMutex field.
func collectGuardedStructs(pass *analysis.Pass) map[string]*guardedStruct {
	out := make(map[string]*guardedStruct)
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				gs := &guardedStruct{name: ts.Name.Name, fields: make(map[string]string)}
				fieldNames := make(map[string]ast.Expr)
				for _, f := range st.Fields.List {
					for _, n := range f.Names {
						fieldNames[n.Name] = f.Type
					}
				}
				for _, f := range st.Fields.List {
					mu := guardAnnotation(f)
					if mu == "" {
						continue
					}
					muType, ok := fieldNames[mu]
					if !ok {
						pass.Reportf(f.Pos(), "guarded by %s: struct %s has no field %s", mu, ts.Name.Name, mu)
						continue
					}
					if !isMutexType(pass.TypesInfo, muType) {
						pass.Reportf(f.Pos(), "guarded by %s: field %s is not a sync.Mutex or sync.RWMutex", mu, mu)
						continue
					}
					for _, n := range f.Names {
						gs.fields[n.Name] = mu
					}
				}
				if len(gs.fields) > 0 {
					out[ts.Name.Name] = gs
				}
			}
		}
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment.
func guardAnnotation(f *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// isMutexType reports whether the field type is sync.Mutex or
// sync.RWMutex (directly; embedded/pointer mutexes are out of scope).
func isMutexType(info *types.Info, t ast.Expr) bool {
	tt := info.TypeOf(t)
	return isNamed(tt, "sync", "Mutex") || isNamed(tt, "sync", "RWMutex")
}

// lockState tracks which receiver mutexes are held at a point in the
// statement walk.
type lockState struct {
	held map[string]bool
}

func (s *lockState) clone() *lockState {
	c := &lockState{held: make(map[string]bool, len(s.held))}
	for k, v := range s.held {
		c.held[k] = v
	}
	return c
}

// checkLockedAccesses walks the method body tracking Lock/Unlock calls on
// the receiver's mutex fields and reports guarded-field accesses made
// while the governing mutex is not held. The tracking is deliberately
// simple: statements are visited in order, and lock-state changes inside
// a branch or loop do not escape it — which matches the code style this
// repo enforces (Lock / defer Unlock at the top of each method, or a
// single straight-line critical section).
func checkLockedAccesses(pass *analysis.Pass, fd *ast.FuncDecl, gs *guardedStruct) {
	recv := recvIdent(fd)
	if recv == nil {
		return
	}
	robj := pass.TypesInfo.Defs[recv]
	if robj == nil {
		return
	}
	w := &lockWalker{pass: pass, recv: robj, gs: gs}
	w.stmts(fd.Body.List, &lockState{held: make(map[string]bool)})
}

type lockWalker struct {
	pass *analysis.Pass
	recv types.Object
	gs   *guardedStruct
}

// stmts processes statements in order, mutating state as Lock/Unlock
// calls appear.
func (w *lockWalker) stmts(list []ast.Stmt, state *lockState) {
	for _, stmt := range list {
		w.stmt(stmt, state)
	}
}

func (w *lockWalker) stmt(stmt ast.Stmt, state *lockState) {
	switch s := stmt.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		if mu, op := w.mutexCall(s.X); mu != "" {
			switch op {
			case "Lock", "RLock":
				state.held[mu] = true
			case "Unlock", "RUnlock":
				state.held[mu] = false
			}
			return
		}
		w.expr(s.X, state)
	case *ast.DeferStmt:
		if mu, op := w.mutexCall(s.Call); mu != "" && (op == "Unlock" || op == "RUnlock") {
			return // defer mu.Unlock(): the lock stays held to function end
		}
		w.expr(s.Call, state)
	case *ast.GoStmt:
		// A goroutine body runs at an unknown time; check it with no lock
		// held regardless of the current state.
		w.expr(s.Call, &lockState{held: make(map[string]bool)})
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, state)
		}
		for _, e := range s.Lhs {
			w.expr(e, state)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					w.expr(v, state)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, state)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, state)
	case *ast.SendStmt:
		w.expr(s.Chan, state)
		w.expr(s.Value, state)
	case *ast.BlockStmt:
		w.stmts(s.List, state)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, state)
		}
		w.expr(s.Cond, state)
		w.stmts(s.Body.List, state.clone())
		if s.Else != nil {
			w.stmt(s.Else, state.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, state)
		}
		if s.Cond != nil {
			w.expr(s.Cond, state)
		}
		inner := state.clone()
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
		w.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		w.expr(s.X, state)
		w.stmts(s.Body.List, state.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, state)
		}
		if s.Tag != nil {
			w.expr(s.Tag, state)
		}
		w.caseClauses(s.Body, state)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, state)
		}
		w.stmt(s.Assign, state)
		w.caseClauses(s.Body, state)
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := state.clone()
				if cc.Comm != nil {
					w.stmt(cc.Comm, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, state)
	}
}

func (w *lockWalker) caseClauses(body *ast.BlockStmt, state *lockState) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			inner := state.clone()
			for _, e := range cc.List {
				w.expr(e, inner)
			}
			w.stmts(cc.Body, inner)
		}
	}
}

// expr reports guarded-field accesses inside an expression, evaluated
// under the given lock state. Function literals are skipped: their
// execution time is unknown, so they are out of scope for this linear
// analysis.
func (w *lockWalker) expr(e ast.Expr, state *lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isIdentFor(w.pass.TypesInfo, sel.X, w.recv) {
			return true
		}
		mu, guarded := w.gs.fields[sel.Sel.Name]
		if !guarded || state.held[mu] {
			return true
		}
		w.pass.Reportf(sel.Pos(),
			"access to field %s (guarded by %s) outside %s critical section",
			sel.Sel.Name, mu, mu)
		return true
	})
}

// mutexCall matches recv.<mu>.Lock/RLock/Unlock/RUnlock() and returns the
// mutex field name and the operation.
func (w *lockWalker) mutexCall(e ast.Expr) (mu, op string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || !isIdentFor(w.pass.TypesInfo, inner.X, w.recv) {
		return "", ""
	}
	return inner.Sel.Name, sel.Sel.Name
}
