package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// LockOrder builds the package's lock-acquisition graph and enforces the
// invariants that keep the concurrent layers deadlock-free:
//
//   - acquisition-order cycles: if any execution acquires lock B while
//     holding A, no execution may acquire A while holding B (directly or
//     through calls; lock identity is per mutex *field* of a named
//     struct, the granularity at which the repo documents its order);
//   - no blocking while locked: channel sends/receives, selects without
//     a default, sync.WaitGroup/Cond Wait, time.Sleep, network I/O and
//     dynamically-dispatched telemetry Record calls must not happen in a
//     critical section;
//   - no double-lock: (re)acquiring a mutex the function already holds,
//     including through a callee, deadlocks a sync.Mutex outright.
//
// The graph is assembled from direct Lock/RLock sites plus call edges:
// same-package callees contribute their transitively-acquired locks;
// cross-package callees on a struct that carries a mutex field are
// conservatively assumed to acquire it (the repo's "guarded by mu" style
// keeps one mutex per shared structure), except callees whose name ends
// in "Locked" — by convention they run under an already-held lock.
var LockOrder = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "flags lock-acquisition-order cycles, blocking operations inside " +
		"critical sections, and double-locking",
	Run: runLockOrder,
}

// LockEdge is one acquisition-order edge: To was (possibly transitively)
// acquired while From was held. Keys are package-qualified:
// "pkg.Type.field" for mutex fields, "pkg.var" for package-level mutexes.
type LockEdge struct {
	From, To string
	Pos      token.Pos
}

// CollectLockEdges returns the package's lock-acquisition graph without
// reporting diagnostics; the repo's lock-graph golden test merges the
// edges of several packages and asserts global acyclicity.
func CollectLockEdges(pass *analysis.Pass) []LockEdge {
	lo := newLockOrder(pass)
	lo.analyze(nil)
	return lo.edges
}

func runLockOrder(pass *analysis.Pass) error {
	lo := newLockOrder(pass)
	lo.analyze(pass)
	lo.reportCycles(pass)
	return nil
}

// funcSummary is the per-function result of the first pass.
type funcSummary struct {
	decl *ast.FuncDecl
	// acquires holds the lock keys this function locks directly.
	acquires map[string]bool
	// calls records same-package call sites with the locks held there.
	calls []callSite
}

type callSite struct {
	callee *types.Func
	held   []string
	pos    token.Pos
}

type lockOrder struct {
	pass      *analysis.Pass
	summaries map[*types.Func]*funcSummary
	edges     []LockEdge
	edgeSeen  map[[2]string]bool
}

func newLockOrder(pass *analysis.Pass) *lockOrder {
	return &lockOrder{
		pass:      pass,
		summaries: make(map[*types.Func]*funcSummary),
		edgeSeen:  make(map[[2]string]bool),
	}
}

// analyze walks every non-test function twice: once to build summaries,
// once to emit edges and (when report is non-nil) the local diagnostics.
func (lo *lockOrder) analyze(report *analysis.Pass) {
	var decls []*ast.FuncDecl
	for _, file := range lo.pass.Files {
		if isTestFile(lo.pass, file) {
			continue
		}
		for _, fd := range funcDecls(file) {
			decls = append(decls, fd)
			if obj := lo.funcObj(fd); obj != nil {
				lo.summaries[obj] = &funcSummary{decl: fd, acquires: make(map[string]bool)}
			}
		}
	}
	// Pass 1: direct acquisitions and call sites.
	for _, fd := range decls {
		obj := lo.funcObj(fd)
		if obj == nil {
			continue
		}
		w := &lockOrderWalker{lo: lo, summary: lo.summaries[obj]}
		w.stmts(fd.Body.List, newHeldSet())
	}
	// Pass 2: transitive closure of acquires over same-package calls.
	lo.closeAcquires()
	// Pass 3: edges and diagnostics.
	for _, fd := range decls {
		obj := lo.funcObj(fd)
		if obj == nil {
			continue
		}
		w := &lockOrderWalker{lo: lo, summary: lo.summaries[obj], report: report, emit: true}
		w.stmts(fd.Body.List, newHeldSet())
	}
}

// closeAcquires folds each same-package callee's acquisitions into its
// callers until a fixpoint (the call graph is small; a bounded loop
// converges in at most |functions| rounds).
func (lo *lockOrder) closeAcquires() {
	for changed := true; changed; {
		changed = false
		for _, s := range lo.summaries {
			for _, cs := range s.calls {
				callee, ok := lo.summaries[cs.callee]
				if !ok {
					continue
				}
				for k := range callee.acquires {
					if !s.acquires[k] {
						s.acquires[k] = true
						changed = true
					}
				}
			}
		}
	}
}

func (lo *lockOrder) funcObj(fd *ast.FuncDecl) *types.Func {
	f, _ := lo.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	return f
}

func (lo *lockOrder) addEdge(from, to string, pos token.Pos) {
	key := [2]string{from, to}
	if lo.edgeSeen[key] {
		return
	}
	lo.edgeSeen[key] = true
	lo.edges = append(lo.edges, LockEdge{From: from, To: to, Pos: pos})
}

// reportCycles flags every edge that closes a cycle in the acquisition
// graph: its target can already reach its source. Each offending site
// gets its own diagnostic, so every link of a deadlock loop is surfaced
// for a fix or a justified suppression.
func (lo *lockOrder) reportCycles(pass *analysis.Pass) {
	adj := make(map[string][]string)
	for _, e := range lo.edges {
		adj[e.From] = append(adj[e.From], e.To)
	}
	for _, e := range lo.edges {
		if e.From == e.To {
			pass.Reportf(e.Pos, "lock-order: %s acquired while already held (self-deadlock)", e.To)
			continue
		}
		if reaches(adj, e.To, e.From) {
			pass.Reportf(e.Pos,
				"lock-order cycle: %s acquired while holding %s, but %s is also acquired while (transitively) holding %s",
				e.To, e.From, e.From, e.To)
		}
	}
}

// reaches reports whether src can reach dst in the edge adjacency.
func reaches(adj map[string][]string, src, dst string) bool {
	seen := map[string]bool{src: true}
	stack := []string{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == dst {
			return true
		}
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				stack = append(stack, m)
			}
		}
	}
	return false
}

// heldSet tracks the locks held at a point of the walk, preserving
// acquisition order for diagnostics.
type heldSet struct {
	order []string
	// rdOnly marks locks whose current hold is a read lock.
	rdOnly map[string]bool
}

func newHeldSet() *heldSet {
	return &heldSet{rdOnly: make(map[string]bool)}
}

func (h *heldSet) clone() *heldSet {
	c := &heldSet{order: append([]string(nil), h.order...), rdOnly: make(map[string]bool, len(h.rdOnly))}
	for k, v := range h.rdOnly {
		c.rdOnly[k] = v
	}
	return c
}

func (h *heldSet) holds(key string) bool {
	for _, k := range h.order {
		if k == key {
			return true
		}
	}
	return false
}

func (h *heldSet) lock(key string, read bool) {
	if !h.holds(key) {
		h.order = append(h.order, key)
	}
	h.rdOnly[key] = read
}

func (h *heldSet) unlock(key string) {
	for i, k := range h.order {
		if k == key {
			h.order = append(h.order[:i], h.order[i+1:]...)
			break
		}
	}
	delete(h.rdOnly, key)
}

// lockOrderWalker is the statement walker shared by the summary and
// emission passes. Like the lockguard walker, it is deliberately linear:
// statements are visited in order and lock-state changes inside a branch
// or loop do not escape it, matching the repo's Lock/defer-Unlock style.
type lockOrderWalker struct {
	lo      *lockOrder
	summary *funcSummary
	// report receives diagnostics in the emission pass; emit also turns
	// on edge recording (the summary pass only gathers acquires/calls).
	report *analysis.Pass
	emit   bool
}

func (w *lockOrderWalker) stmts(list []ast.Stmt, held *heldSet) {
	for _, stmt := range list {
		w.stmt(stmt, held)
	}
}

func (w *lockOrderWalker) stmt(stmt ast.Stmt, held *heldSet) {
	switch s := stmt.(type) {
	case nil:
		return
	case *ast.ExprStmt:
		if key, op, pos := w.mutexCall(s.X); key != "" {
			w.lockOp(key, op, pos, held)
			return
		}
		w.expr(s.X, held)
	case *ast.DeferStmt:
		if key, op, _ := w.mutexCall(s.Call); key != "" && (op == "Unlock" || op == "RUnlock") {
			return // defer mu.Unlock(): held to function end
		}
		w.expr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine runs at an unknown time with no lock inherited.
		w.expr(s.Call, newHeldSet())
	case *ast.SendStmt:
		w.blocking("channel send", s.Arrow, held)
		w.expr(s.Chan, held)
		w.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, held)
		}
		for _, e := range s.Lhs {
			w.expr(e, held)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					w.expr(v, held)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, held)
		}
	case *ast.IncDecStmt:
		w.expr(s.X, held)
	case *ast.BlockStmt:
		w.stmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.expr(s.Cond, held)
		w.stmts(s.Body.List, held.clone())
		if s.Else != nil {
			w.stmt(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Cond != nil {
			w.expr(s.Cond, held)
		}
		inner := held.clone()
		if s.Post != nil {
			w.stmt(s.Post, inner)
		}
		w.stmts(s.Body.List, inner)
	case *ast.RangeStmt:
		w.expr(s.X, held)
		w.stmts(s.Body.List, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		if s.Tag != nil {
			w.expr(s.Tag, held)
		}
		w.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held)
		}
		w.stmt(s.Assign, held)
		w.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		if len(held.order) > 0 && !selectHasDefault(s) {
			w.blocking("select without default", s.Select, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := held.clone()
				if cc.Comm != nil {
					w.commStmt(cc.Comm, inner)
				}
				w.stmts(cc.Body, inner)
			}
		}
	case *ast.LabeledStmt:
		w.stmt(s.Stmt, held)
	}
}

// commStmt visits a select communication clause without re-reporting the
// send/receive itself (the enclosing select is the blocking point).
func (w *lockOrderWalker) commStmt(stmt ast.Stmt, held *heldSet) {
	switch s := stmt.(type) {
	case *ast.SendStmt:
		w.exprSkipBlocking(s.Chan, held)
		w.exprSkipBlocking(s.Value, held)
	case *ast.ExprStmt:
		w.exprSkipBlocking(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.exprSkipBlocking(e, held)
		}
	default:
		w.stmt(stmt, held)
	}
}

func (w *lockOrderWalker) caseClauses(body *ast.BlockStmt, held *heldSet) {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok {
			inner := held.clone()
			for _, e := range cc.List {
				w.expr(e, inner)
			}
			w.stmts(cc.Body, inner)
		}
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// lockOp applies one Lock/Unlock to the held set, recording edges and
// double-lock diagnostics in the emission pass.
func (w *lockOrderWalker) lockOp(key, op string, pos token.Pos, held *heldSet) {
	switch op {
	case "Lock", "RLock":
		read := op == "RLock"
		if held.holds(key) {
			// Recursive RLock is legal (if inadvisable); any combination
			// involving a write lock deadlocks.
			if w.report != nil && (!read || !held.rdOnly[key]) {
				w.report.Reportf(pos, "lock-order: %s.%s while %s is already held (double-lock)",
					key, op, key)
			}
			return
		}
		if w.emit {
			for _, h := range held.order {
				w.lo.addEdge(h, key, pos)
			}
		}
		w.summary.acquires[key] = true
		held.lock(key, read)
	case "Unlock", "RUnlock":
		held.unlock(key)
	}
}

// expr scans an expression for lock-relevant events: receives, blocking
// calls, and call edges. Function literals are skipped — their execution
// time is unknown, so they are out of scope for this linear analysis
// (goroutine bodies are checked lock-free via the GoStmt case).
func (w *lockOrderWalker) expr(e ast.Expr, held *heldSet) {
	w.exprInner(e, held, false)
}

func (w *lockOrderWalker) exprSkipBlocking(e ast.Expr, held *heldSet) {
	w.exprInner(e, held, true)
}

func (w *lockOrderWalker) exprInner(e ast.Expr, held *heldSet, skipBlocking bool) {
	if e == nil {
		return
	}
	skipRoot := ast.Unparen(e)
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !(skipBlocking && n == skipRoot) {
				w.blocking("channel receive", n.OpPos, held)
			}
		case *ast.CallExpr:
			w.call(n, held)
		}
		return true
	})
}

// call handles one call expression: blocking classification, same-package
// call-site recording, and the cross-package mutex-field heuristic.
func (w *lockOrderWalker) call(call *ast.CallExpr, held *heldSet) {
	info := w.lo.pass.TypesInfo
	if desc := blockingCallDesc(info, call); desc != "" {
		w.blocking(desc, call.Pos(), held)
	}
	callee := calleeFunc(info, call)
	if callee == nil {
		return
	}
	if strings.HasSuffix(callee.Name(), "Locked") {
		// Convention: *Locked runs under the caller's already-held lock
		// and must not acquire anything itself (lockguard's exemption).
		return
	}
	if callSum, samePkg := w.lo.summaries[callee]; samePkg {
		if !w.emit {
			w.summary.calls = append(w.summary.calls, callSite{callee: callee, held: append([]string(nil), held.order...), pos: call.Pos()})
			return
		}
		for _, k := range sortedKeys(callSum.acquires) {
			for _, h := range held.order {
				// h == k yields a self-edge, reported as a self-deadlock.
				w.lo.addEdge(h, k, call.Pos())
			}
		}
		return
	}
	// Cross-package callee: if the receiver struct carries mutex fields,
	// assume the method may take them. One mutex per shared structure is
	// the repo's style, so this stays precise in practice.
	if w.emit && len(held.order) > 0 {
		for _, k := range mutexFieldKeys(callee) {
			for _, h := range held.order {
				w.lo.addEdge(h, k, call.Pos())
			}
		}
	}
}

// sortedKeys returns the map's keys in sorted order so edge emission —
// and therefore diagnostic order — is deterministic.
func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// blocking reports a blocking operation performed inside a critical
// section.
func (w *lockOrderWalker) blocking(desc string, pos token.Pos, held *heldSet) {
	if w.report == nil || len(held.order) == 0 {
		return
	}
	w.report.Reportf(pos, "lock-order: %s while holding %s", desc, strings.Join(held.order, ", "))
}

// mutexCall matches <expr>.<mu>.Lock/RLock/Unlock/RUnlock() where <mu> is
// a sync.Mutex/RWMutex field of a named struct, or <var>.Lock() on a
// package-level mutex, and returns the lock key and operation.
func (w *lockOrderWalker) mutexCall(e ast.Expr) (key, op string, pos token.Pos) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", "", token.NoPos
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", token.NoPos
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", token.NoPos
	}
	info := w.lo.pass.TypesInfo
	base := ast.Unparen(sel.X)
	if !isMutexValue(info, base) {
		return "", "", token.NoPos
	}
	return lockKey(info, base), sel.Sel.Name, call.Pos()
}

// isMutexValue reports whether e has type sync.Mutex or sync.RWMutex
// (possibly behind a pointer).
func isMutexValue(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// lockKey derives the package-qualified lock identity of a mutex
// expression: "pkg.Type.field" for a struct field, "pkg.name" for a
// package-level variable, "" (untracked) otherwise.
func lockKey(info *types.Info, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		field := fieldObjOf(info, x)
		if field == nil {
			return ""
		}
		owner := namedType(info.TypeOf(x.X))
		if owner == nil || owner.Obj() == nil || owner.Obj().Pkg() == nil {
			return ""
		}
		return owner.Obj().Pkg().Name() + "." + owner.Obj().Name() + "." + field.Name()
	case *ast.Ident:
		obj, ok := info.Uses[x].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		// Only package-level mutex vars form stable lock classes; locals
		// are per-invocation and cannot participate in a global order.
		if obj.Parent() != obj.Pkg().Scope() {
			return ""
		}
		return obj.Pkg().Name() + "." + obj.Name()
	}
	return ""
}

// calleeFunc resolves the called function or method object, or nil for
// dynamic calls (interface methods, function values, conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if s := info.Selections[fun]; s != nil && s.Kind() == types.MethodVal {
			f, _ := s.Obj().(*types.Func)
			return f
		}
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// mutexFieldKeys lists the lock keys of every sync.Mutex/RWMutex field
// on the callee's receiver struct (empty for free functions and mutexless
// receivers). A field that is a same-package struct — or a slice, array
// or pointer of one — carrying its own mutex fields contributes those
// keys too: that is the sharded-container shape (one guard per shard
// held behind an aggregate handle), and the method may take any shard's
// lock.
func mutexFieldKeys(callee *types.Func) []string {
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	owner := namedType(sig.Recv().Type())
	if owner == nil || owner.Obj() == nil || owner.Obj().Pkg() == nil {
		return nil
	}
	st, ok := owner.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	pkg := owner.Obj().Pkg()
	seen := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isNamed(f.Type(), "sync", "Mutex") || isNamed(f.Type(), "sync", "RWMutex") {
			seen[pkg.Name()+"."+owner.Obj().Name()+"."+f.Name()] = true
			continue
		}
		inner := namedType(elemStructType(f.Type()))
		if inner == nil || inner.Obj() == nil || inner.Obj().Pkg() != pkg {
			continue
		}
		ist, ok := inner.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for j := 0; j < ist.NumFields(); j++ {
			nf := ist.Field(j)
			if isNamed(nf.Type(), "sync", "Mutex") || isNamed(nf.Type(), "sync", "RWMutex") {
				seen[pkg.Name()+"."+inner.Obj().Name()+"."+nf.Name()] = true
			}
		}
	}
	keys := sortedKeys(seen)
	return keys
}

// elemStructType unwraps slices, arrays and pointers (one container
// level, as in "shards []dbShard") down to a candidate element type.
func elemStructType(t types.Type) types.Type {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		t = u.Elem()
	case *types.Array:
		t = u.Elem()
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return t
}

// blockingCallDesc classifies calls that can block indefinitely: Wait on
// a WaitGroup, time.Sleep, read/write/accept-class methods on a net
// connection or listener, and Record/RecordBatch dispatched through a
// telemetry sink interface (the concrete sink behind it may be the
// lossless, blocking variant). sync.Cond.Wait is deliberately exempt:
// waiting under the cond's own mutex is the required usage, and the
// atomically-released lock is not held while blocked.
func blockingCallDesc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	name := sel.Sel.Name
	if pkgPath := pkgNameOf(info, sel.X); pkgPath != "" {
		if pkgPath == "time" && name == "Sleep" {
			return "time.Sleep"
		}
		return ""
	}
	recv := info.TypeOf(sel.X)
	if recv == nil {
		return ""
	}
	switch name {
	case "Wait":
		if isNamed(recv, "sync", "WaitGroup") {
			return "sync.WaitGroup.Wait"
		}
	case "Record", "RecordBatch":
		if iface, ok := recv.Underlying().(*types.Interface); ok && iface != nil {
			if n := namedType(recv); n != nil && n.Obj() != nil && n.Obj().Pkg() != nil &&
				n.Obj().Pkg().Name() == "telemetry" {
				return "telemetry sink " + name + " (dynamic, possibly blocking)"
			}
		}
	}
	if fromNetPackage(recv) && netBlockingMethod[name] {
		return "net I/O (" + name + ")"
	}
	return ""
}

// netBlockingMethod names the net-type methods that actually hit the
// wire and can stall; accessors like Addr, String, LocalAddr and quick
// teardown like Close are not worth a critical-section diagnostic.
var netBlockingMethod = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Accept": true, "AcceptTCP": true, "Serve": true, "Dial": true,
	"DialContext": true,
}

// fromNetPackage reports whether t is (a pointer to) a type declared in
// package net — a conn, listener, or dialer whose methods hit the wire.
func fromNetPackage(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "net"
}

// isTestFile reports whether the file is a _test.go file; the
// concurrency analyzers check production code only.
func isTestFile(pass *analysis.Pass, file *ast.File) bool {
	return strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
}
