package checkers

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// allAnalyzers mirrors the suite main.go registers; the ignore-contract
// tests run every one of them so no analyzer can drift out of the shared
// suppression semantics.
var allAnalyzers = []*analysis.Analyzer{
	Determinism,
	NilTracer,
	ProtoRoundTrip,
	CVClone,
	LockGuard,
	InstrumentNames,
	LockOrder,
	GoroLife,
	HotAlloc,
}

func loadFixture(t *testing.T, name string) (*analysis.Loader, *analysis.Package) {
	t.Helper()
	loader, err := analysis.NewLoader("")
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	loader.IncludeTests = true
	dir := filepath.Join("testdata", "src", name)
	loader.Extra = map[string]string{name: dir}
	pkg, err := loader.Load(name, dir)
	if err != nil {
		t.Fatalf("load %s: %v", name, err)
	}
	return loader, pkg
}

// TestBareIgnoreIsAFinding runs every analyzer over a fixture whose only
// content is one bare (justification-free) ignore directive per
// analyzer: each run must report exactly that directive.
func TestBareIgnoreIsAFinding(t *testing.T) {
	_, pkg := loadFixture(t, "ignorebare")
	for _, a := range allAnalyzers {
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if len(diags) != 1 {
			t.Errorf("%s: got %d diagnostics, want exactly the bare-directive finding: %v",
				a.Name, len(diags), diags)
			continue
		}
		want := "bare ignore directive for " + a.Name
		if !strings.Contains(diags[0].Message, want) {
			t.Errorf("%s: diagnostic %q does not contain %q", a.Name, diags[0].Message, want)
		}
	}
}

// TestJustifiedIgnoreSuppressesExactlyOne runs hotalloc over a fixture
// with two findings on one line under a single justified directive: one
// finding must be suppressed, the other must survive.
func TestJustifiedIgnoreSuppressesExactlyOne(t *testing.T) {
	_, pkg := loadFixture(t, "ignoreone")
	diags, err := analysis.Run(HotAlloc, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1 surviving finding: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "boxes the value") {
		t.Errorf("surviving diagnostic %q is not the boxing finding", diags[0].Message)
	}
}
