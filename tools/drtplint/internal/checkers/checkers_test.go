package checkers

import (
	"testing"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis/analysistest"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", Determinism, "experiments", "sim", "webserver", "faultinject")
}

func TestNilTracer(t *testing.T) {
	analysistest.Run(t, "testdata", NilTracer, "telemetry", "consumer")
}

func TestProtoRoundTrip(t *testing.T) {
	analysistest.Run(t, "testdata", ProtoRoundTrip, "proto")
}

func TestCVClone(t *testing.T) {
	analysistest.Run(t, "testdata", CVClone, "cvuser")
}

func TestLockGuard(t *testing.T) {
	analysistest.Run(t, "testdata", LockGuard, "lockfix")
}

func TestInstrumentNames(t *testing.T) {
	analysistest.Run(t, "testdata", InstrumentNames, "instrument")
}

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", LockOrder, "lockorder")
}

func TestGoroLife(t *testing.T) {
	analysistest.Run(t, "testdata", GoroLife, "gorolife")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", HotAlloc, "hotalloc")
}
