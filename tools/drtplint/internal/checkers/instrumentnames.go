package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// instrumentCtors maps every telemetry.Registry constructor to the unit
// suffixes its metric kind requires ("" means any suffix is fine). The
// first string argument of each is the exposed metric name.
var instrumentCtors = map[string][]string{
	"Counter":      {"_total"},
	"CounterVec":   {"_total"},
	"Gauge":        nil,
	"GaugeVec":     nil,
	"Histogram":    {"_seconds", "_bytes"},
	"HistogramVec": {"_seconds", "_bytes"},
	"Latency":      {"_seconds"},
	"LatencyVec":   {"_seconds"},
}

// vecTypes are the labeled-family handles whose With method mints one
// child time series per distinct label value.
var vecTypes = map[string]bool{
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true, "LatencyVec": true,
}

// snakeCaseRE is the Prometheus-conventional metric-name shape the repo
// standardizes on (no capitals, no leading digit or underscore).
var snakeCaseRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// dynamicFormatters are the call targets that turn runtime values into
// label strings — the signature of unbounded label cardinality. Node
// counts, connection IDs and the like must not become label values.
var dynamicFormatters = map[string]bool{"fmt": true, "strconv": true}

// InstrumentNames enforces the repo's metric-naming contract at every
// Registry constructor call: names must be snake_case string literals,
// counters must end in _total, histograms and latency instruments must
// carry a unit suffix (_seconds or _bytes), and Vec.With label values
// must not be minted by fmt/strconv formatting (dynamic cardinality).
var InstrumentNames = &analysis.Analyzer{
	Name: "instrumentnames",
	Doc: "enforces metric naming: snake_case literal names, _total on counters, " +
		"_seconds/_bytes unit suffixes, no fmt/strconv-formatted label values",
	Run: runInstrumentNames,
}

func runInstrumentNames(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recvType := pass.TypesInfo.TypeOf(sel.X)
			switch {
			case isNamed(recvType, "telemetry", "Registry"):
				if suffixes, ok := instrumentCtors[sel.Sel.Name]; ok {
					checkMetricName(pass, call, sel.Sel.Name, suffixes)
				}
			case sel.Sel.Name == "With" && isVecType(recvType):
				checkLabelValues(pass, call)
			}
			return true
		})
	}
	return nil
}

// isVecType reports whether t is (a pointer to) one of the telemetry
// labeled-family types.
func isVecType(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == "telemetry" && vecTypes[n.Obj().Name()]
}

// checkMetricName validates the constructor's name argument: a literal,
// snake_case, with the metric kind's unit suffix.
func checkMetricName(pass *analysis.Pass, call *ast.CallExpr, ctor string, suffixes []string) {
	if len(call.Args) == 0 {
		return
	}
	name, ok := stringLiteral(call.Args[0])
	if !ok {
		pass.Reportf(call.Args[0].Pos(),
			"metric name passed to Registry.%s must be a string literal so tooling can index the series", ctor)
		return
	}
	if !snakeCaseRE.MatchString(name) {
		pass.Reportf(call.Args[0].Pos(),
			"metric name %q is not snake_case (want ^[a-z][a-z0-9_]*$)", name)
		return
	}
	if len(suffixes) == 0 {
		return
	}
	for _, s := range suffixes {
		if strings.HasSuffix(name, s) {
			return
		}
	}
	pass.Reportf(call.Args[0].Pos(),
		"metric name %q from Registry.%s must end in %s", name, ctor, strings.Join(suffixes, " or "))
}

// checkLabelValues flags With arguments produced by fmt/strconv calls:
// formatting a runtime value into a label mints a new time series per
// distinct value. Sites with a genuinely bounded domain suppress with
// //drtplint:ignore instrumentnames <justification>.
func checkLabelValues(pass *analysis.Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		inner, ok := ast.Unparen(arg).(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := inner.Fun.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		path := pkgNameOf(pass.TypesInfo, sel.X)
		if dynamicFormatters[path] {
			pass.Reportf(arg.Pos(),
				"label value built with %s.%s creates one time series per distinct value; "+
					"use a bounded label set or suppress with a justification", path, sel.Sel.Name)
		}
	}
}

// stringLiteral unquotes e when it is a plain string literal.
func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
