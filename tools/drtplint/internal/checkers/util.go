// Package checkers implements drtplint's five domain analyzers. They
// encode repo invariants by *shape*, matching types by package name and
// type name rather than full import path so the same analyzers run
// against both the real tree and self-contained analysistest fixtures.
package checkers

import (
	"go/ast"
	"go/types"
)

// namedType unwraps t to its named type, looking through pointers and
// aliases; nil when t is not (a pointer to) a named type.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, _ := t.(*types.Named)
	return n
}

// isNamed reports whether t is (a pointer to) the named type pkgName.name.
func isNamed(t types.Type, pkgName, name string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Name() == pkgName && n.Obj().Name() == name
}

// isSliceOfNamed reports whether t is a slice whose element is the named
// type pkgName.name.
func isSliceOfNamed(t types.Type, pkgName, name string) bool {
	if t == nil {
		return false
	}
	s, ok := types.Unalias(t).(*types.Slice)
	if !ok {
		return false
	}
	return isNamed(s.Elem(), pkgName, name)
}

// recvIdent returns the receiver identifier of a method declaration, or
// nil for functions and anonymous receivers.
func recvIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return nil
	}
	id := fd.Recv.List[0].Names[0]
	if id.Name == "_" {
		return nil
	}
	return id
}

// usesObject reports whether expr mentions the given object.
func usesObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isIdentFor reports whether e (possibly parenthesized) is an identifier
// resolving to obj.
func isIdentFor(info *types.Info, e ast.Expr, obj types.Object) bool {
	e = ast.Unparen(e)
	id, ok := e.(*ast.Ident)
	return ok && (info.Uses[id] == obj || info.Defs[id] == obj)
}

// pkgNameOf resolves a selector base identifier to the imported package it
// names, or "" when it is not a package qualifier.
func pkgNameOf(info *types.Info, e ast.Expr) string {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// fieldObjOf returns the struct-field object a selector expression reads,
// or nil when sel is not a field access.
func fieldObjOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		// Qualified identifiers (pkg.Var) also appear as selectors.
		if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

// funcDecls yields every function declaration with a body in the file.
func funcDecls(file *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
