package checkers

import (
	"go/ast"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// ProtoRoundTrip cross-checks every packet struct in the proto package
// against its hand-written wire codec: a struct that implements the
// Message interface (a Kind() method) must have MarshalBinary and
// UnmarshalBinary methods, and every exported field must appear in both
// bodies — a field written to the wire but never read back (or decoded
// but never encoded) is exactly the silent-corruption bug class this
// analyzer exists for.
var ProtoRoundTrip = &analysis.Analyzer{
	Name: "protoroundtrip",
	Doc: "verifies that every exported field of each proto packet struct " +
		"is covered by both MarshalBinary and UnmarshalBinary",
	Run: runProtoRoundTrip,
}

func runProtoRoundTrip(pass *analysis.Pass) error {
	if pass.Pkg == nil || pass.Pkg.Name() != "proto" {
		return nil
	}

	// structDecl records one struct type and its method bodies of interest.
	type structDecl struct {
		spec      *ast.TypeSpec
		st        *ast.StructType
		hasKind   bool
		marshal   *ast.FuncDecl
		unmarshal *ast.FuncDecl
	}
	decls := make(map[string]*structDecl)

	for _, file := range pass.Files {
		for _, d := range file.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if st, ok := ts.Type.(*ast.StructType); ok {
					decls[ts.Name.Name] = &structDecl{spec: ts, st: st}
				}
			}
		}
	}
	for _, file := range pass.Files {
		for _, fd := range funcDecls(file) {
			name := recvTypeName(fd)
			sd := decls[name]
			if sd == nil {
				continue
			}
			switch fd.Name.Name {
			case "Kind":
				sd.hasKind = true
			case "MarshalBinary":
				sd.marshal = fd
			case "UnmarshalBinary":
				sd.unmarshal = fd
			}
		}
	}

	for name, sd := range decls {
		if sd.hasKind && (sd.marshal == nil || sd.unmarshal == nil) {
			pass.Reportf(sd.spec.Pos(),
				"packet struct %s implements Message but lacks a MarshalBinary/UnmarshalBinary wire codec", name)
			continue
		}
		if sd.marshal == nil || sd.unmarshal == nil {
			continue // not a wire struct
		}
		enc := fieldMentions(pass, sd.marshal)
		dec := fieldMentions(pass, sd.unmarshal)
		for _, field := range sd.st.Fields.List {
			for _, fname := range field.Names {
				if !fname.IsExported() {
					continue
				}
				e, d := enc[fname.Name], dec[fname.Name]
				switch {
				case !e && !d:
					pass.Reportf(fname.Pos(),
						"field %s.%s is not covered by the wire codec (missing from MarshalBinary and UnmarshalBinary)",
						name, fname.Name)
				case e && !d:
					pass.Reportf(fname.Pos(),
						"field %s.%s is encoded by MarshalBinary but never decoded by UnmarshalBinary",
						name, fname.Name)
				case !e && d:
					pass.Reportf(fname.Pos(),
						"field %s.%s is decoded by UnmarshalBinary but never encoded by MarshalBinary",
						name, fname.Name)
				}
			}
		}
	}
	return nil
}

// recvTypeName returns the bare receiver type name of a method ("" for
// functions).
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// fieldMentions collects the names of receiver fields mentioned anywhere
// in the method body (reads and writes alike: in a marshal body a mention
// is an encode, in an unmarshal body a decode).
func fieldMentions(pass *analysis.Pass, fd *ast.FuncDecl) map[string]bool {
	out := make(map[string]bool)
	recv := recvIdent(fd)
	if recv == nil {
		return out
	}
	robj := pass.TypesInfo.Defs[recv]
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if robj != nil && !isIdentFor(pass.TypesInfo, sel.X, robj) {
			return true
		}
		if robj == nil {
			// Degraded mode (type errors): match on receiver name text.
			id, ok := ast.Unparen(sel.X).(*ast.Ident)
			if !ok || id.Name != recv.Name {
				return true
			}
		}
		out[sel.Sel.Name] = true
		return true
	})
	return out
}
