package checkers

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

var updateGolden = flag.Bool("update", false, "rewrite the lock-graph golden file")

// lockGraphPackages are the concurrency-bearing subsystems whose merged
// lock-acquisition graph is pinned by the golden file and asserted
// acyclic: a cycle here is a latent deadlock between the router's
// message plane, the link-state database, and the control plane.
var lockGraphPackages = []string{
	"github.com/rtcl/drtp/internal/router",
	"github.com/rtcl/drtp/internal/lsdb",
	"github.com/rtcl/drtp/internal/controlplane",
}

// TestLockGraphAcyclic loads the real router/lsdb/controlplane packages,
// merges their lock-acquisition edges, asserts the combined graph has no
// cycle, and compares the edge list against testdata/lockgraph.golden so
// any new cross-mutex ordering shows up in review as a diff.
func TestLockGraphAcyclic(t *testing.T) {
	root := moduleRoot(t)
	loader, err := analysis.NewLoader(root)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}

	edgeSet := make(map[string]bool)
	adj := make(map[string][]string)
	for _, path := range lockGraphPackages {
		pkg, err := loader.LoadPath(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}
		pass := &analysis.Pass{
			Analyzer: LockOrder, Path: pkg.Path, Fset: pkg.Fset,
			Files: pkg.Files, Pkg: pkg.Pkg, TypesInfo: pkg.Info,
		}
		for _, e := range CollectLockEdges(pass) {
			key := e.From + " -> " + e.To
			if !edgeSet[key] {
				edgeSet[key] = true
				adj[e.From] = append(adj[e.From], e.To)
			}
		}
	}

	var edges []string
	for k := range edgeSet {
		edges = append(edges, k)
	}
	sort.Strings(edges)

	if cycle := findCycle(adj); cycle != "" {
		t.Fatalf("lock-acquisition graph has a cycle (latent deadlock): %s\nedges:\n  %s",
			cycle, strings.Join(edges, "\n  "))
	}

	golden := filepath.Join("testdata", "lockgraph.golden")
	got := strings.Join(edges, "\n") + "\n"
	if len(edges) == 0 {
		got = ""
	}
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(want) != got {
		t.Errorf("lock graph changed; review the new ordering and run go test -run TestLockGraphAcyclic ./internal/checkers -update\ngot:\n%swant:\n%s", got, want)
	}
}

// moduleRoot walks up from the working directory to the outermost go.mod
// (the analyzed repo, not the tool's own nested module).
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := ""
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			root = d
		}
		parent := filepath.Dir(d)
		if parent == d {
			break
		}
		d = parent
	}
	if root == "" {
		t.Fatalf("no go.mod above %s", dir)
	}
	return root
}

// findCycle returns a rendered cycle in the directed graph, or "".
func findCycle(adj map[string][]string) string {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int)
	var stack []string
	var found string
	var visit func(string) bool
	visit = func(u string) bool {
		color[u] = gray
		stack = append(stack, u)
		for _, v := range adj[u] {
			switch color[v] {
			case gray:
				i := 0
				for j, s := range stack {
					if s == v {
						i = j
						break
					}
				}
				found = strings.Join(append(stack[i:], v), " -> ")
				return true
			case white:
				if visit(v) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[u] = black
		return false
	}
	var nodes []string
	for u := range adj {
		nodes = append(nodes, u)
	}
	sort.Strings(nodes)
	for _, u := range nodes {
		if color[u] == white && visit(u) {
			return found
		}
	}
	return ""
}
