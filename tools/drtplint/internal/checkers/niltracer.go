package checkers

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// nilSafeTypes are the telemetry instruments documented as nil-safe: a
// nil pointer is a valid no-op instance, so hot paths stay instrumented
// unconditionally. Every exported pointer-receiver method on these types
// must guard the receiver before touching its fields.
var nilSafeTypes = map[string]bool{
	"Tracer": true, "Registry": true,
	"Counter": true, "Gauge": true, "Histogram": true, "LatencyHist": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true, "LatencyVec": true,
}

// valueBanTypes are the instruments that must never be used by value:
// their methods' nil checks only work through a pointer, and Tracer holds
// sync/atomic state that must not be copied.
var valueBanTypes = map[string]bool{"Tracer": true, "Registry": true}

// NilTracer enforces the telemetry nil-safety contract in both
// directions: inside the telemetry package, every exported
// pointer-receiver method of a nil-safe instrument must begin with a nil
// guard (or never touch receiver fields); everywhere, Tracer and Registry
// must be handled as pointers — value declarations, value composite
// literals and explicit dereferences are flagged.
var NilTracer = &analysis.Analyzer{
	Name: "niltracer",
	Doc: "enforces nil-safe telemetry: receiver nil guards inside the " +
		"telemetry package, pointer-only Tracer/Registry usage elsewhere",
	Run: runNilTracer,
}

func runNilTracer(pass *analysis.Pass) error {
	inTelemetry := pass.Pkg != nil && pass.Pkg.Name() == "telemetry"
	for _, file := range pass.Files {
		if inTelemetry {
			for _, fd := range funcDecls(file) {
				checkNilGuard(pass, fd)
			}
		}
		checkValueUsage(pass, file)
	}
	return nil
}

// --- rule 1: receiver guards inside package telemetry ------------------

// checkNilGuard verifies that an exported pointer-receiver method on a
// nil-safe instrument guards the receiver before any field access.
func checkNilGuard(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := recvIdent(fd)
	if recv == nil || !fd.Name.IsExported() {
		return
	}
	robj := pass.TypesInfo.Defs[recv]
	if robj == nil {
		return
	}
	rt := robj.Type()
	if _, isPtr := types.Unalias(rt).(*types.Pointer); !isPtr {
		return
	}
	n := namedType(rt)
	if n == nil || !nilSafeTypes[n.Obj().Name()] {
		return
	}
	if !accessesReceiverFields(pass.TypesInfo, fd.Body, robj) {
		return // methods that never deref the receiver are trivially nil-safe
	}
	if len(fd.Body.List) > 0 && isNilGuard(pass.TypesInfo, fd.Body.List[0], robj) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported method (*%s).%s accesses receiver fields without a leading nil guard; "+
			"a nil receiver must be a no-op", n.Obj().Name(), fd.Name.Name)
}

// accessesReceiverFields reports whether the body selects a struct field
// through the receiver.
func accessesReceiverFields(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		if isIdentFor(info, sel.X, recv) && fieldObjOf(info, sel) != nil {
			found = true
		}
		return !found
	})
	return found
}

// isNilGuard recognizes the accepted leading guard shapes:
//
//	if x == nil { return ... }
//	if !x.M(...) { return ... }     (M is itself a checked nil-safe method)
//	if x.M(...) == k { return ... } (ditto)
//	if x != nil { ... }             (whole body wrapped)
//	return x != nil && ...          (the Enabled shape)
//	return x == nil || ...
//
// The guard condition must not itself select receiver fields: a method
// call on the receiver is fine (it re-enters a checked method), a field
// read is not.
func isNilGuard(info *types.Info, stmt ast.Stmt, recv types.Object) bool {
	switch s := stmt.(type) {
	case *ast.IfStmt:
		if s.Init != nil || !condIsNilSafe(info, s.Cond, recv) {
			return false
		}
		if isRecvNilCheck(info, s.Cond, recv, token.NEQ) {
			return true // if x != nil { ... } wraps the body
		}
		// Early-return guard: the if body must terminate.
		return endsInReturn(s.Body)
	case *ast.ReturnStmt:
		if len(s.Results) != 1 {
			return false
		}
		b, ok := ast.Unparen(s.Results[0]).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		if b.Op == token.LAND && isRecvNilCheck(info, b.X, recv, token.NEQ) {
			return true
		}
		if b.Op == token.LOR && isRecvNilCheck(info, b.X, recv, token.EQL) {
			return true
		}
	}
	return false
}

// condIsNilSafe reports whether the condition mentions the receiver and
// only touches it via nil comparisons or method calls (no field reads).
func condIsNilSafe(info *types.Info, cond ast.Expr, recv types.Object) bool {
	if !usesObject(info, cond, recv) {
		return false
	}
	safe := true
	ast.Inspect(cond, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return safe
		}
		if isIdentFor(info, sel.X, recv) && fieldObjOf(info, sel) != nil {
			safe = false
		}
		return safe
	})
	return safe
}

// isRecvNilCheck matches `recv <op> nil` (or reversed).
func isRecvNilCheck(info *types.Info, e ast.Expr, recv types.Object, op token.Token) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || b.Op != op {
		return false
	}
	isNilIdent := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isIdentFor(info, b.X, recv) && isNilIdent(b.Y)) ||
		(isIdentFor(info, b.Y, recv) && isNilIdent(b.X))
}

// endsInReturn reports whether the block's last statement terminates the
// function.
func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	}
	return false
}

// --- rule 2: pointer-only usage everywhere -----------------------------

// checkValueUsage flags value-typed Tracer/Registry declarations, value
// composite literals and explicit dereferences.
func checkValueUsage(pass *analysis.Pass, file *ast.File) {
	// Collect composite literals that appear under a & (legitimate).
	addressed := make(map[ast.Expr]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.AND {
			addressed[ast.Unparen(u.X)] = true
		}
		return true
	})

	banned := func(t types.Type) (string, bool) {
		// The ban is on non-pointer usage, so look at t directly.
		n, ok := types.Unalias(t).(*types.Named)
		if !ok || n.Obj().Pkg() == nil || n.Obj().Pkg().Name() != "telemetry" {
			return "", false
		}
		if valueBanTypes[n.Obj().Name()] {
			return n.Obj().Name(), true
		}
		return "", false
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Field:
			// struct fields, params, results
			if t := pass.TypesInfo.TypeOf(n.Type); t != nil {
				if name, ok := banned(t); ok {
					pass.Reportf(n.Pos(),
						"telemetry.%s used by value; declare *telemetry.%s so the nil no-op contract applies",
						name, name)
				}
			}
		case *ast.ValueSpec:
			if n.Type != nil {
				if t := pass.TypesInfo.TypeOf(n.Type); t != nil {
					if name, ok := banned(t); ok {
						pass.Reportf(n.Pos(),
							"telemetry.%s declared by value; use *telemetry.%s", name, name)
					}
				}
			}
		case *ast.CompositeLit:
			if addressed[ast.Node(n).(ast.Expr)] {
				return true
			}
			if t := pass.TypesInfo.TypeOf(n); t != nil {
				if name, ok := banned(t); ok {
					pass.Reportf(n.Pos(),
						"telemetry.%s composite literal by value; take its address (&telemetry.%s{...})",
						name, name)
				}
			}
		case *ast.StarExpr:
			tv, ok := pass.TypesInfo.Types[n]
			if !ok || !tv.IsValue() {
				return true
			}
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if p, ok := types.Unalias(t).(*types.Pointer); ok {
					if name, ok := banned(p.Elem()); ok {
						pass.Reportf(n.Pos(),
							"dereference copies telemetry.%s and defeats its nil guard; keep the pointer", name)
					}
				}
			}
		}
		return true
	})
}
