package checkers

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"github.com/rtcl/drtp/tools/drtplint/internal/analysis"
)

// hotpathRE marks a function as allocation-sensitive:
//
//	//drtplint:hotpath
//	func (s *Scratch) ShortestDistancesInto(...) { ... }
//
// placed in the function's doc comment. Inside such functions the
// analyzer flags the allocation forms below.
var hotpathRE = regexp.MustCompile(`^//drtplint:hotpath\b`)

// HotAlloc flags per-call allocations inside functions annotated
// //drtplint:hotpath:
//
//   - make/new calls, unless inside an if whose condition consults
//     cap() or len() (the grow-only-when-needed idiom);
//   - append to a freshly allocated or nil slice (every call allocates;
//     appends to caller-provided or field-backed slices are fine);
//   - fmt.* calls and errors.New (formatting allocates);
//   - function literals capturing enclosing variables (captures escape);
//   - passing a concrete non-pointer value where an interface parameter
//     is expected (the value is boxed on every call).
//
// The annotation is the contract: un-annotated functions are not
// checked, and a finding that is intentional carries a justified
// //drtplint:ignore hotalloc directive. Test files are exempt.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation forms (make, growing append, fmt, escaping " +
		"closures, interface boxing) inside //drtplint:hotpath functions",
	Run: runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if isTestFile(pass, file) {
			continue
		}
		for _, fd := range funcDecls(file) {
			if !isHotPath(fd.Doc) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func isHotPath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if hotpathRE.MatchString(c.Text) {
			return true
		}
	}
	return false
}

// span is a half-open position interval.
type span struct{ lo, hi token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.lo && p < s.hi }

func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	guards := capGuards(fd.Body)
	fresh := freshSlices(info, fd.Body)
	inGuard := func(p token.Pos) bool {
		for _, g := range guards {
			if g.contains(p) {
				return true
			}
		}
		return false
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, info, n, fresh, inGuard)
		case *ast.FuncLit:
			if caps := capturedVars(pass, n); len(caps) > 0 {
				pass.Reportf(n.Pos(), "hot path: closure captures %s and may escape to the heap; "+
					"hoist the capture or pass parameters explicitly", strings.Join(caps, ", "))
			}
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, info *types.Info, call *ast.CallExpr, fresh map[types.Object]bool, inGuard func(token.Pos) bool) {
	switch builtinName(info, call) {
	case "make", "new":
		if !inGuard(call.Pos()) {
			pass.Reportf(call.Pos(), "hot path: %s allocates on every call; reuse a scratch "+
				"buffer or guard the growth with a cap/len check", builtinName(info, call))
		}
		return
	case "append":
		if len(call.Args) > 0 && freshTarget(info, call.Args[0], fresh) {
			pass.Reportf(call.Pos(), "hot path: append to a fresh slice allocates on every "+
				"call; reuse a caller-provided or scratch buffer")
		}
		return
	case "":
		// Not a builtin; fall through to package-call and boxing checks.
	default:
		return
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		switch pkgNameOf(info, sel.X) {
		case "fmt":
			pass.Reportf(call.Pos(), "hot path: fmt.%s formats and allocates; precompute the "+
				"string or append to a scratch buffer", sel.Sel.Name)
			return
		case "errors":
			if sel.Sel.Name == "New" {
				pass.Reportf(call.Pos(), "hot path: errors.New allocates; use a package-level "+
					"sentinel error")
				return
			}
		}
	}
	checkBoxing(pass, info, call)
}

// checkBoxing reports concrete non-pointer arguments passed to interface
// parameters: every such call boxes the value on the heap.
func checkBoxing(pass *analysis.Pass, info *types.Info, call *ast.CallExpr) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return // conversion or untyped builtin
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i == params.Len()-1 && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && !call.Ellipsis.IsValid():
			s, ok := params.At(params.Len() - 1).Type().(*types.Slice)
			if !ok {
				continue
			}
			pt = s.Elem()
		default:
			continue
		}
		if _, ok := pt.Underlying().(*types.Interface); !ok {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || isBoxFree(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "hot path: passing %s as interface %s boxes the value on "+
			"every call; use a concrete parameter type", types.TypeString(at, types.RelativeTo(pass.Pkg)),
			types.TypeString(pt, types.RelativeTo(pass.Pkg)))
	}
}

// isBoxFree reports whether storing a value of type t in an interface
// does not allocate: interfaces (already boxed), pointers, channels,
// funcs and maps (single-word references), and untyped nil.
func isBoxFree(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		b := t.Underlying().(*types.Basic)
		return b.Kind() == types.UntypedNil
	}
	return false
}

// capGuards collects the spans of if statements whose condition consults
// cap() or len() — the grow-only-when-needed idiom exempts allocations
// inside them.
func capGuards(body *ast.BlockStmt) []span {
	var out []span
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Cond == nil {
			return true
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			if call, ok := c.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok &&
					(id.Name == "cap" || id.Name == "len") {
					guarded = true
					return false
				}
			}
			return true
		})
		if guarded {
			out = append(out, span{ifs.Pos(), ifs.End()})
		}
		return true
	})
	return out
}

// freshSlices collects local variables whose storage is freshly
// allocated in this function (make/new/composite-literal initialisers,
// or var declarations of slice/map type with no initialiser): appends
// to them allocate on every call.
func freshSlices(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	mark := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			fresh[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				if allocExpr(info, n.Rhs[i]) {
					mark(id)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, id := range n.Names {
					if obj := info.Defs[id]; obj != nil {
						switch obj.Type().Underlying().(type) {
						case *types.Slice, *types.Map:
							fresh[obj] = true
						}
					}
				}
				return true
			}
			if len(n.Values) == len(n.Names) {
				for i, id := range n.Names {
					if allocExpr(info, n.Values[i]) {
						mark(id)
					}
				}
			}
		}
		return true
	})
	return fresh
}

// allocExpr reports whether e is a freshly allocating expression.
func allocExpr(info *types.Info, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, ok := e.X.(*ast.CompositeLit)
		return e.Op == token.AND && ok
	case *ast.CallExpr:
		name := builtinName(info, e)
		return name == "make" || name == "new"
	}
	return false
}

// freshTarget reports whether the append target is freshly allocated:
// a nil literal, a composite literal, or a local marked fresh.
func freshTarget(info *types.Info, e ast.Expr, fresh map[types.Object]bool) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		if obj := info.Uses[e]; obj != nil {
			return fresh[obj]
		}
	}
	return false
}

// builtinName returns the name of the builtin being called, or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// capturedVars lists function-local variables of the enclosing scope
// that the literal captures, sorted for deterministic diagnostics.
func capturedVars(pass *analysis.Pass, lit *ast.FuncLit) []string {
	info := pass.TypesInfo
	seen := make(map[string]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != pass.Pkg {
			return true
		}
		// Package-level variables are not captures; locals defined inside
		// the literal itself are not either.
		if v.Parent() == pass.Pkg.Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		seen[id.Name] = true
		return true
	})
	var out []string
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
