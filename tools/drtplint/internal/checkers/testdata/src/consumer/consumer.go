// Package consumer exercises niltracer's pointer-only rule: Tracer and
// Registry must never be used by value.
package consumer

import "telemetry"

// Server mixes a banned value field with a correct pointer field.
type Server struct {
	tr telemetry.Tracer // want "telemetry.Tracer used by value"
	ok *telemetry.Tracer
}

var global telemetry.Registry // want "telemetry.Registry declared by value"

// Use takes a Tracer by value, severing the nil no-op contract.
func Use(t telemetry.Tracer) { // want "telemetry.Tracer used by value"
	_ = t
}

// Good builds an addressed literal: allowed.
func Good() *telemetry.Tracer {
	return &telemetry.Tracer{}
}

// Deref copies the instrument out of its pointer.
func Deref(p *telemetry.Tracer) {
	v := *p // want "dereference copies telemetry.Tracer"
	_ = v
}
