// Package faultinject is a mixed fixture for the determinism analyzer:
// the chaos layer sits inside the deterministic domain, so it must draw
// its fault decisions from seeded streams and an injected clock. The
// compliant patterns mirror the real package (clock func fields, sorted
// flush of the held-message map); the violations are the shortcuts a
// naive chaos layer would reach for.
package faultinject

import (
	"math/rand"
	"sort"
	"time"
)

// Injector mirrors the real chaos layer's shape: an injected clock and an
// explicit seeded stream per link pair.
type Injector struct {
	clock func() float64
	rng   *rand.Rand
	held  map[string][]int
}

// now reads the injected clock: allowed, no wall-clock call.
func (in *Injector) now() float64 {
	return in.clock()
}

// WallNow reads real time to stamp a fault window.
func WallNow() float64 {
	return float64(time.Now().UnixNano()) // want "wall-clock read time.Now"
}

// GlobalDrop decides a drop from the shared global source.
func GlobalDrop(p float64) bool {
	return rand.Float64() < p // want "global math/rand call rand.Float64"
}

// SeededDrop decides a drop from an explicit per-injector stream: allowed.
func (in *Injector) SeededDrop(p float64) bool {
	return in.rng.Float64() < p
}

// Flush drains held messages in sorted pair order: the sort launders the
// map order, so this is allowed.
func (in *Injector) Flush() []int {
	var pairs []string
	for pair := range in.held {
		pairs = append(pairs, pair)
	}
	sort.Strings(pairs)
	var out []int
	for _, pair := range pairs {
		out = append(out, in.held[pair]...)
	}
	return out
}

// LeakyFlush drains held messages in raw map order onto a channel.
func (in *Injector) LeakyFlush(ch chan int) {
	for _, msgs := range in.held { // want "map iteration order reaches a channel send"
		for _, m := range msgs {
			ch <- m
		}
	}
}

// Delay schedules a deferred delivery; time.AfterFunc is not a clock
// read, so the analyzer leaves it alone.
func Delay(d time.Duration, fn func()) *time.Timer {
	return time.AfterFunc(d, fn)
}
