// Package sim is a passing fixture for the determinism analyzer: it is
// inside the domain but every pattern is deterministic.
package sim

import "sort"

// Ordered collects map keys and sorts before returning.
func Ordered(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// Sum folds over a map: order-independent, no published order.
func Sum(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
