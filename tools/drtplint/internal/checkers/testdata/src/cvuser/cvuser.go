// Package cvuser is the cvclone fixture: conflict-vector and LSET
// aliasing in both violating and compliant forms.
package cvuser

import (
	"bitvec"
	"graph"
)

// State owns a conflict vector and an LSET.
type State struct {
	cv   *bitvec.Vector
	lset []graph.LinkID
}

// MergeBad mutates its input in place and returns it.
func MergeBad(a, b *bitvec.Vector) *bitvec.Vector {
	a.Or(b)
	return a // want "returns parameter a after in-place mutation"
}

// MergeGood clones before mutating.
func MergeGood(a, b *bitvec.Vector) *bitvec.Vector {
	out := a.Clone()
	out.Or(b)
	return out
}

// CV hands out internal vector state.
func (s *State) CV() *bitvec.Vector {
	return s.cv // want "returns internal bitvec.Vector field cv directly"
}

// LSET hands out the internal LSET slice.
func (s *State) LSET() []graph.LinkID {
	return s.lset // want "returns internal LSET slice field lset directly"
}

// CVCopy is the safe accessor.
func (s *State) CVCopy() *bitvec.Vector {
	return s.cv.Clone()
}

// SetCV stores the caller's vector without cloning.
func (s *State) SetCV(v *bitvec.Vector) {
	s.cv = v // want "stores bitvec.Vector parameter v into a struct field without Clone/copy"
}

// SetCVGood clones before storing.
func (s *State) SetCVGood(v *bitvec.Vector) {
	s.cv = v.Clone()
}

// Cache stores a caller-owned vector into a map element.
func Cache(m map[int]*bitvec.Vector, k int, v *bitvec.Vector) {
	m[k] = v // want "stores bitvec.Vector parameter v into a map/slice element"
}
