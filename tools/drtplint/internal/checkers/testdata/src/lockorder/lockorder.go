// Package lockorder is the lockorder fixture: acquisition-order cycles
// (same-package, via calls, and across a package boundary), double-locks,
// and blocking operations inside critical sections.
package lockorder

import (
	"net"
	"sync"
	"time"

	"lockorder/sub"
	"telemetry"
)

// A and B form a two-lock cycle: AB acquires B's lock (through a call)
// while holding A's, BA acquires A's directly while holding B's.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	n  int
}

func (b *B) grab() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// AB holds A.mu and calls into a function that takes B.mu.
func (a *A) AB(b *B) {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.grab() // want "lock-order cycle: lockorder.B.mu acquired while holding lockorder.A.mu"
	a.n++
}

// BA holds B.mu and takes A.mu directly — the reverse order.
func (b *B) BA(a *A) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want "lock-order cycle: lockorder.A.mu acquired while holding lockorder.B.mu"
	a.n++
	a.mu.Unlock()
}

// C exercises the double-lock diagnostics.
type C struct {
	mu sync.Mutex
	n  int
}

func (c *C) Double() {
	c.mu.Lock()
	c.mu.Lock() // want "double-lock"
	c.n++
	c.mu.Unlock()
}

func (c *C) helper() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// Reenter self-deadlocks through a call: helper reacquires the held lock.
func (c *C) Reenter() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.helper() // want "self-deadlock"
}

// R: recursive read-locking is legal, upgrading to a write lock is not.
type R struct {
	mu sync.RWMutex
	n  int
}

func (r *R) ReadTwice() int {
	r.mu.RLock()
	r.mu.RLock()
	v := r.n
	r.mu.RUnlock()
	r.mu.RUnlock()
	return v
}

func (r *R) Upgrade() {
	r.mu.RLock()
	r.mu.Lock() // want "double-lock"
	r.n++
	r.mu.Unlock()
	r.mu.RUnlock()
}

// S exercises the blocking-under-lock diagnostics.
type S struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
	n  int
}

func (s *S) Blockers(conn net.Conn, sink telemetry.Sink) {
	s.mu.Lock()
	s.ch <- 1                      // want "channel send while holding lockorder.S.mu"
	<-s.ch                         // want "channel receive while holding lockorder.S.mu"
	s.wg.Wait()                    // want "sync.WaitGroup.Wait while holding"
	time.Sleep(time.Millisecond)   // want "time.Sleep while holding"
	_, _ = conn.Write([]byte{1})   // want "net I/O"
	sink.Record("under the mutex") // want "telemetry sink Record"
	s.mu.Unlock()
}

// SelectNoDefault blocks until a case fires: flagged.
func (s *S) SelectNoDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select without default while holding"
	case v := <-s.ch:
		s.n = v
	}
}

// SelectDefault is non-blocking by construction: not flagged.
func (s *S) SelectDefault() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-s.ch:
		s.n = v
	default:
	}
}

// AfterUnlock blocks only outside the critical section: not flagged.
func (s *S) AfterUnlock() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- s.n
	s.wg.Wait()
}

// SpawnUnderLock hands work to a goroutine; the body runs later, outside
// the critical section, so nothing is flagged.
func (s *S) SpawnUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- 1
	}()
}

// X closes a cross-package cycle with sub.Store: Hold takes the store's
// exported mutex under its own, Cross calls a store method (assumed to
// take sub.Store.Mu) under its own.
type X struct {
	mu sync.Mutex
	n  int
}

func (x *X) Hold(st *sub.Store) {
	st.Mu.Lock()
	defer st.Mu.Unlock()
	x.mu.Lock() // want "lock-order cycle: lockorder.X.mu acquired while holding sub.Store.Mu"
	x.n++
	x.mu.Unlock()
}

func (x *X) Cross(st *sub.Store) int {
	x.mu.Lock()
	defer x.mu.Unlock()
	return st.Get() // want "lock-order cycle: sub.Store.Mu acquired while holding lockorder.X.mu"
}

// CrossLocked calls only a *Locked method under its lock: by convention
// the callee acquires nothing, so no edge and no cycle.
type Y struct {
	mu sync.Mutex
}

func (y *Y) CrossLocked(st *sub.Store) int {
	y.mu.Lock()
	defer y.mu.Unlock()
	return st.SizeLocked()
}
