// Package sub is the cross-package half of the lockorder fixture: a
// store whose exported mutex lets the importing package create an
// acquisition-order cycle across a package boundary.
package sub

import "sync"

// Store is a shared structure with one mutex, the shape the heuristic
// cross-package edge assumes.
type Store struct {
	Mu sync.Mutex
	n  int
}

// Get takes the store lock.
func (s *Store) Get() int {
	s.Mu.Lock()
	defer s.Mu.Unlock()
	return s.n
}

// SizeLocked runs under a caller-held lock; by the *Locked convention it
// must not (and does not) acquire anything.
func (s *Store) SizeLocked() int { return s.n }
