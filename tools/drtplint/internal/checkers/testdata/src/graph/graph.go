// Package graph is a support fixture mirroring the repo's graph IDs.
package graph

// NodeID identifies a node.
type NodeID int

// LinkID identifies a directed link; []LinkID is an LSET.
type LinkID int
