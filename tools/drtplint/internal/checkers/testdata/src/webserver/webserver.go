// Package webserver is outside the deterministic simulation domain:
// wall-clock reads here are legitimate and must not be flagged.
package webserver

import "time"

// Now timestamps a live request.
func Now() int64 { return time.Now().Unix() }
