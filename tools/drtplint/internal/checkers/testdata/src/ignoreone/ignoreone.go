// Package ignoreone pins the other half of the suppression contract: a
// justified ignore directive suppresses exactly one diagnostic, so a
// line with two findings keeps one visible.
package ignoreone

func sinkTwo(x, y interface{}) {}

// Two boxes both arguments of one call — two findings on one line. The
// directive absorbs the first; the second must survive.
//
//drtplint:hotpath
func Two(a, b int) {
	//drtplint:ignore hotalloc demonstrating that one directive suppresses one finding
	sinkTwo(a, b)
}
