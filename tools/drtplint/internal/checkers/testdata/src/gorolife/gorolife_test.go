package gorolife

import "testing"

// Test files are exempt from the gorolife contract: this leak must not
// be reported.
func TestLeakAllowed(t *testing.T) {
	r := &Runner{ch: make(chan int)}
	go func() {
		for {
			r.ch <- 1
		}
	}()
}
