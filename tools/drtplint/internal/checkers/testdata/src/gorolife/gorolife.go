// Package gorolife is the gorolife fixture: goroutines with structural
// stop paths, annotated spawns, and leaks.
package gorolife

import (
	"context"
	"sync"
)

// Runner bundles every lifecycle mechanism the analyzer recognises.
type Runner struct {
	stop chan struct{}
	ch   chan int
	wg   sync.WaitGroup
	n    int
}

// Close stops the runner.
func (r *Runner) Close() { close(r.stop) }

func (r *Runner) loop() {
	for {
		select {
		case <-r.stop:
			return
		case v := <-r.ch:
			r.n = v
		}
	}
}

func (r *Runner) spin() {
	for {
		r.n++
	}
}

// Start spawns a method whose body selects on the stop channel.
func (r *Runner) Start() {
	go r.loop()
}

// StartWorker participates in the WaitGroup.
func (r *Runner) StartWorker() {
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.n++
	}()
}

// StartPump ranges over a channel; it ends when the channel is closed.
func (r *Runner) StartPump(in <-chan int) {
	go func() {
		for v := range in {
			r.n = v
		}
	}()
}

// StartCtx waits on ctx.Done().
func (r *Runner) StartCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// StartCommaOk exits when the channel is closed (comma-ok receive).
func (r *Runner) StartCommaOk() {
	go func() {
		for {
			v, ok := <-r.ch
			if !ok {
				return
			}
			r.n = v
		}
	}()
}

// StartIndirect spawns a literal that calls into a function with a stop
// path — resolved one call level deep.
func (r *Runner) StartIndirect() {
	go func() {
		r.loop()
	}()
}

// Annotated declares the stop path explicitly; spin itself has none.
func (r *Runner) Annotated() {
	//drtplint:spawns stopped-by=Close
	go r.spin()
}

// DocAnnotated carries the annotation on the function's doc comment.
//
//drtplint:spawns stopped-by=Close
func (r *Runner) DocAnnotated() {
	go r.spin()
}

// AnnotatedProse documents an external mechanism; prose values are not
// validated against the receiver.
func (r *Runner) AnnotatedProse() {
	//drtplint:spawns stopped-by=process-exit
	go r.spin()
}

// AnnotatedBad names a method the receiver does not have.
func (r *Runner) AnnotatedBad() {
	//drtplint:spawns stopped-by=Missing
	go r.spin() // want "type Runner has no method Missing"
}

// Leak loops forever with no exit: flagged.
func (r *Runner) Leak() {
	go func() { // want "no detectable stop path"
		for {
			r.ch <- 1
		}
	}()
}

// LeakMethod spawns a resolvable method with no stop path: flagged.
func (r *Runner) LeakMethod() {
	go r.spin() // want "no detectable stop path"
}

// Opaque spawns a function value the analyzer cannot resolve: flagged.
func (r *Runner) Opaque(fns []func()) {
	go fns[0]() // want "lifecycle cannot be determined"
}
