// Package hotalloc is the hotalloc fixture: allocation forms inside
// annotated hot-path functions, and the exempt idioms around them.
package hotalloc

import (
	"errors"
	"fmt"
)

// Scratch is a reusable buffer in the style of the real scratch types.
type Scratch struct {
	xs []int
}

// Grow reuses its backing array and only reallocates under a cap guard.
//
//drtplint:hotpath
func (s *Scratch) Grow(n int) {
	if cap(s.xs) < n {
		s.xs = make([]int, n)
	}
	s.xs = s.xs[:n]
}

// Fill appends into a caller-provided slice: no fresh allocation.
//
//drtplint:hotpath
func Fill(dst []int, n int) []int {
	for i := 0; i < n; i++ {
		dst = append(dst, i)
	}
	return dst
}

// Alloc allocates unconditionally.
//
//drtplint:hotpath
func Alloc(n int) []int {
	return make([]int, n) // want "make allocates on every call"
}

// AllocNew uses new the same way.
//
//drtplint:hotpath
func AllocNew() *Scratch {
	return new(Scratch) // want "new allocates on every call"
}

// GrowingAppend appends to a nil local: every call allocates.
//
//drtplint:hotpath
func GrowingAppend(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i) // want "append to a fresh slice"
	}
	return out
}

// Format goes through fmt on the hot path.
//
//drtplint:hotpath
func Format(x int) string {
	return fmt.Sprintf("%d", x) // want "fmt.Sprintf formats and allocates"
}

// ErrPath constructs an error per call.
//
//drtplint:hotpath
func ErrPath() error {
	return errors.New("boom") // want "errors.New allocates"
}

// Capture returns a closure over its parameter: the capture escapes.
//
//drtplint:hotpath
func Capture(k int) func() int {
	return func() int { // want "closure captures k"
		return k
	}
}

// NoCapture closes over nothing: not flagged.
//
//drtplint:hotpath
func NoCapture() func() int {
	return func() int {
		return 42
	}
}

func sinkAny(v interface{}) {}

func sinkVariadic(vs ...interface{}) {}

// Box passes a concrete value where an interface is expected.
//
//drtplint:hotpath
func Box(v int) {
	sinkAny(v) // want "passing int as interface"
}

// BoxVariadic boxes through a variadic interface parameter.
//
//drtplint:hotpath
func BoxVariadic(v int) {
	sinkVariadic(v) // want "passing int as interface"
}

// NoBox passes pointers and interfaces: reference-sized, no allocation.
//
//drtplint:hotpath
func NoBox(s *Scratch, e error) {
	sinkAny(s)
	sinkAny(e)
	sinkAny(nil)
}

// Cold is un-annotated: the same allocations are not the analyzer's
// business here.
func Cold(n int) []byte {
	out := make([]byte, 0, n)
	return append(out, fmt.Sprintln(n)...)
}
