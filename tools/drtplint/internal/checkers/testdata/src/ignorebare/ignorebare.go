// Package ignorebare exercises the suppression contract shared by every
// analyzer: an ignore directive without a justification is a finding in
// its own right. Each directive below names one analyzer; running that
// analyzer over this package must yield exactly the bare-directive
// diagnostic and nothing else (the code is inert on purpose).
package ignorebare

//drtplint:ignore determinism
func a() {}

//drtplint:ignore niltracer
func b() {}

//drtplint:ignore protoroundtrip
func c() {}

//drtplint:ignore cvclone
func d() {}

//drtplint:ignore lockguard
func e() {}

//drtplint:ignore instrumentnames
func f() {}

//drtplint:ignore lockorder
func g() {}

//drtplint:ignore gorolife
func h() {}

//drtplint:ignore hotalloc
func i() {}
