// Package instrument is the instrumentnames fixture: compliant and
// violating metric registrations and label usages.
package instrument

import (
	"fmt"
	"strconv"

	"telemetry"
)

// good covers every constructor with conforming names and bounded labels.
func good(reg *telemetry.Registry) {
	reg.Counter("drtp_requests_total", "Requests seen.").Inc()
	reg.Gauge("drtp_active_conns", "Active connections.").Set(1)
	reg.Histogram("drtp_setup_seconds", "Setup time.", nil).Observe(0.1)
	reg.Histogram("drtp_payload_bytes", "Payload size.", nil).Observe(64)
	reg.Latency("drtp_hop_seconds", "Per-hop time.").Observe(1)
	reg.LatencyVec("drtp_hop_signal_seconds", "Per-hop time by role.", "role").
		With("primary").Observe(1)
	reg.CounterVec("drtp_events_total", "Events by kind.", "kind").
		With("establish").Inc()
}

// badNames violates the literal, snake_case and unit-suffix rules.
func badNames(reg *telemetry.Registry) {
	reg.Counter("drtp_requests", "x")          // want "must end in _total"
	reg.Counter("drtpRequests_total", "x")     // want "not snake_case"
	reg.Gauge("2fast_gauge", "x")              // want "not snake_case"
	reg.Histogram("drtp_setup_time", "x", nil) // want "must end in _seconds or _bytes"
	reg.Latency("drtp_hop_latency", "x")       // want "must end in _seconds"
	reg.LatencyVec("drtp_hop_ms", "x", "role") // want "must end in _seconds"
	reg.CounterVec("drtp_events", "x", "kind") // want "must end in _total"
	name := "drtp_dynamic_total"
	reg.Counter(name, "x") // want "must be a string literal"
}

// badLabels mints label values from runtime data.
func badLabels(reg *telemetry.Registry, node int) {
	v := reg.CounterVec("drtp_node_events_total", "x", "node")
	v.With(fmt.Sprint(node)).Inc()   // want "label value built with fmt.Sprint"
	v.With(strconv.Itoa(node)).Inc() // want "label value built with strconv.Itoa"
	lv := reg.LatencyVec("drtp_node_seconds", "x", "node")
	lv.With(fmt.Sprintf("n%d", node)).Observe(1) // want "label value built with fmt.Sprintf"

	// A justified suppression silences the diagnostic for the next line.
	//drtplint:ignore instrumentnames node IDs are a bounded fixture set
	v.With(fmt.Sprint(node)).Inc()
}
