// Package lockfix is the lockguard fixture: guarded-by annotations with
// compliant critical sections, violations, and malformed annotations.
package lockfix

import "sync"

// Pool has two guarded fields and one unguarded field.
type Pool struct {
	mu sync.Mutex
	// conns is the active connection set; guarded by mu.
	conns map[int]string
	// free is the freelist; guarded by mu.
	free []int
	name string
}

// Add holds mu via defer for the whole body.
func (p *Pool) Add(id int, addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns[id] = addr
	p.free = append(p.free, id)
}

// Get brackets the access with Lock/Unlock.
func (p *Pool) Get(id int) string {
	p.mu.Lock()
	v := p.conns[id]
	p.mu.Unlock()
	return v
}

// Leak reads a guarded field with no lock at all.
func (p *Pool) Leak(id int) string {
	return p.conns[id] // want "access to field conns .guarded by mu. outside mu critical section"
}

// Race releases the lock before the access.
func (p *Pool) Race(id int) {
	p.mu.Lock()
	p.mu.Unlock()
	delete(p.conns, id) // want "access to field conns"
}

// Name reads an unguarded field: fine.
func (p *Pool) Name() string {
	return p.name
}

// lenLocked is exempt by the Locked-suffix convention.
func (p *Pool) lenLocked() int {
	return len(p.conns)
}

// Bad carries malformed annotations.
type Bad struct {
	// guarded by missing.
	x int // want "struct Bad has no field missing"
	// guarded by y.
	z int // want "field y is not a sync.Mutex or sync.RWMutex"
	y int
}
