// Package proto is the protoroundtrip fixture: packet structs whose
// hand-written codecs are complete (Hello), lopsided (Broken), or absent
// (Naked).
package proto

// Hello is fully covered by its wire codec: no diagnostics.
type Hello struct {
	From int
	Seq  uint64
}

func (h *Hello) Kind() string { return "hello" }

func (h *Hello) MarshalBinary() ([]byte, error) {
	var buf []byte
	buf = appendUvarint(buf, uint64(h.From))
	buf = appendUvarint(buf, h.Seq)
	return buf, nil
}

func (h *Hello) UnmarshalBinary(data []byte) error {
	var v uint64
	v, data = readUvarint(data)
	h.From = int(v)
	h.Seq, data = readUvarint(data)
	_ = data
	return nil
}

// Broken has one field per lopsided-coverage failure mode.
type Broken struct {
	A int
	B int // want "field Broken.B is encoded by MarshalBinary but never decoded"
	C int // want "field Broken.C is decoded by UnmarshalBinary but never encoded"
	D int // want "field Broken.D is not covered by the wire codec"
}

func (b *Broken) Kind() string { return "broken" }

func (b *Broken) MarshalBinary() ([]byte, error) {
	var buf []byte
	buf = appendUvarint(buf, uint64(b.A))
	buf = appendUvarint(buf, uint64(b.B))
	return buf, nil
}

func (b *Broken) UnmarshalBinary(data []byte) error {
	var v uint64
	v, data = readUvarint(data)
	b.A = int(v)
	v, data = readUvarint(data)
	b.C = int(v)
	_ = data
	return nil
}

// Naked implements Message but has no codec at all.
type Naked struct { // want "implements Message but lacks a MarshalBinary/UnmarshalBinary wire codec"
	X int
}

func (n *Naked) Kind() string { return "naked" }

// plain is not a Message and not a wire struct: ignored.
type plain struct {
	Y int
}

func appendUvarint(b []byte, v uint64) []byte {
	for v >= 0x80 {
		b = append(b, byte(v)|0x80)
		v >>= 7
	}
	return append(b, byte(v))
}

func readUvarint(b []byte) (uint64, []byte) {
	var v uint64
	var shift uint
	for i, c := range b {
		if c < 0x80 {
			return v | uint64(c)<<shift, b[i+1:]
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
	return 0, nil
}
