// registry.go extends the telemetry fixture with the instrument
// constructor surface the instrumentnames analyzer matches on. Every
// method carries the leading nil guard the niltracer analyzer requires.
package telemetry

// Counter is a monotonic instrument.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Gauge is a set-anytime instrument.
type Gauge struct{ v float64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

// Histogram buckets float observations.
type Histogram struct{ n int64 }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.n++
}

// LatencyHist buckets duration observations.
type LatencyHist struct{ n int64 }

// Observe records one sample.
func (h *LatencyHist) Observe(d int64) {
	if h == nil {
		return
	}
	h.n++
}

// CounterVec is a labeled counter family.
type CounterVec struct{ kids map[string]*Counter }

// With resolves one child.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	_ = v.kids
	return &Counter{}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ kids map[string]*Histogram }

// With resolves one child.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	_ = v.kids
	return &Histogram{}
}

// LatencyVec is a labeled latency family.
type LatencyVec struct{ kids map[string]*LatencyHist }

// With resolves one child.
func (v *LatencyVec) With(values ...string) *LatencyHist {
	if v == nil {
		return nil
	}
	_ = v.kids
	return &LatencyHist{}
}

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &Counter{}
}

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &Gauge{}
}

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &Histogram{}
}

// Latency registers a latency histogram.
func (r *Registry) Latency(name, help string) *LatencyHist {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &LatencyHist{}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &CounterVec{}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &HistogramVec{}
}

// LatencyVec registers a labeled latency family.
func (r *Registry) LatencyVec(name, help string, labels ...string) *LatencyVec {
	if r == nil {
		return nil
	}
	r.names = append(r.names, name)
	return &LatencyVec{}
}
