// Package telemetry is the niltracer fixture: a miniature of the repo's
// nil-safe instrument contract with both compliant and violating methods.
package telemetry

// Sink receives events.
type Sink interface{ Record(string) }

// Tracer is nil-safe: a nil *Tracer is a valid no-op instance.
type Tracer struct {
	sinks []Sink
}

// Enabled is the canonical combined guard shape.
func (t *Tracer) Enabled() bool {
	return t != nil && len(t.sinks) > 0
}

// Event guards through Enabled before touching fields.
func (t *Tracer) Event(name string) {
	if !t.Enabled() {
		return
	}
	for _, s := range t.sinks {
		s.Record(name)
	}
}

// Wrapped guards by wrapping the whole body.
func (t *Tracer) Wrapped(name string) {
	if t != nil {
		for _, s := range t.sinks {
			s.Record(name)
		}
	}
}

// Flush touches t.sinks with no guard at all.
func (t *Tracer) Flush() { // want "accesses receiver fields without a leading nil guard"
	for _, s := range t.sinks {
		s.Record("flush")
	}
}

// Kind never dereferences the receiver: trivially nil-safe.
func (t *Tracer) Kind() string { return "tracer" }

// Registry is nil-safe like Tracer.
type Registry struct {
	names []string
}

// Register uses the early-return guard shape.
func (r *Registry) Register(name string) {
	if r == nil {
		return
	}
	r.names = append(r.names, name)
}

// Names reads a field with no guard.
func (r *Registry) Names() []string { // want "accesses receiver fields without a leading nil guard"
	return r.names
}
