// Package bitvec is a support fixture: a miniature of the repo's conflict
// vector with the same mutator and Clone method set.
package bitvec

// Vector is a fixed-width bit set.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed vector of n bits.
func New(n int) *Vector {
	return &Vector{n: n, words: make([]uint64, (n+63)/64)}
}

// Set sets bit i in place.
func (v *Vector) Set(i int) { v.words[i>>6] |= 1 << (i & 63) }

// Clear clears bit i in place.
func (v *Vector) Clear(i int) { v.words[i>>6] &^= 1 << (i & 63) }

// Or folds o into v in place.
func (v *Vector) Or(o *Vector) {
	for i := range v.words {
		v.words[i] |= o.words[i]
	}
}

// Reset zeroes the vector in place.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Clone returns an independent copy.
func (v *Vector) Clone() *Vector {
	c := &Vector{n: v.n, words: make([]uint64, len(v.words))}
	copy(c.words, v.words)
	return c
}
