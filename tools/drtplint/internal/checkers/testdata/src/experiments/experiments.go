// Package experiments is a failing fixture for the determinism analyzer:
// its path segment places it inside the deterministic simulation domain.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"telemetry"
)

// Stamp reads the wall clock — the canonical violation.
func Stamp() int64 {
	return time.Now().Unix() // want "wall-clock read time.Now"
}

// Elapsed measures real time inside simulation code.
func Elapsed(start time.Time) float64 {
	return time.Since(start).Seconds() // want "wall-clock read time.Since"
}

// Draw uses the shared global math/rand source.
func Draw() int {
	return rand.Intn(10) // want "global math/rand call rand.Intn"
}

// SeededDraw builds an explicit seeded stream: allowed.
func SeededDraw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Keys publishes map iteration order through an unsorted append.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration appends to out without a later sort"
		out = append(out, k)
	}
	return out
}

// SortedKeys launders the order through a sort: allowed.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Dump writes output in map order.
func Dump(m map[string]int) {
	for k, v := range m { // want "map iteration order reaches an output write"
		fmt.Println(k, v)
	}
}

// Publish sends on a channel in map order.
func Publish(m map[string]int, ch chan string) {
	for k := range m { // want "map iteration order reaches a channel send"
		ch <- k
	}
}

// Emit records telemetry events in map order.
func Emit(tr *telemetry.Tracer, m map[string]int) {
	for k := range m { // want "map iteration order reaches a telemetry emission"
		tr.Event(k)
	}
}

// Suppressed exercises the ignore-directive path: the diagnostic below is
// expected to be filtered out, so there is no want comment.
func Suppressed() int64 {
	//lint:ignore determinism fixture exercises the suppression path
	return time.Now().Unix()
}
