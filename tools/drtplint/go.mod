module github.com/rtcl/drtp/tools/drtplint

go 1.22
