#!/bin/sh
# scale_smoke.sh — trimmed web-scale smoke for the -exp scale experiment.
# Runs the same workload twice, once with the sparse (auto) APLV/CV
# layout and once with the dense baseline pinned on, then asserts:
#
#   1. both runs complete with accepted connections and a positive
#      establishment rate,
#   2. the layouts agree on every admission and recovery statistic
#      (only storage metrics may differ — they compute identical state),
#   3. the sparse run's heap high-water mark sits at least MIN_RATIO×
#      below the dense baseline's.
#
# The default operating point (2000 nodes, lambda 0.08, 6000 arrivals per
# cell) is the smallest where the dense layout's O(links²) counters
# dominate the layout-independent heap (graph, scenario, per-connection
# bookkeeping), giving the ratio assertion margin; at ~1k nodes the
# shared state still hides most of the difference. GOGC=50 and a single
# worker keep the peak-heap samples comparable run to run.
#
# Usage:
#   scripts/scale_smoke.sh
#   SCALE_NODES=3000 scripts/scale_smoke.sh    # larger operating point
#   SCALE_MIN_RATIO=3 scripts/scale_smoke.sh   # relax the memory bar
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
NODES=${SCALE_NODES:-2000}
CONNS=${SCALE_CONNS:-6000}
FAILS=${SCALE_FAILURES:-8}
LAMBDA=${SCALE_LAMBDA:-0.08}
MIN_RATIO=${SCALE_MIN_RATIO:-5}

DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

fail() {
	echo "FAIL: $1" >&2
	exit 1
}

echo "==> building drtpsim"
"$GO" build -o "$DIR/drtpsim" ./cmd/drtpsim

# run <state>: one scale pass; leaves the SCALE_JSON body in $DIR/<state>.json
run() {
	echo "==> -exp scale: $NODES nodes, $CONNS conns/cell, aplv $1"
	GOGC=50 "$DIR/drtpsim" -exp scale -state "$1" -workers 1 \
		-scale-nodes "$NODES" -scale-conns "$CONNS" \
		-scale-failures "$FAILS" -lambda "$LAMBDA" >"$DIR/$1.out"
	sed -n 's/^SCALE_JSON //p' "$DIR/$1.out" >"$DIR/$1.json"
	[ -s "$DIR/$1.json" ] || fail "no SCALE_JSON line in the $1 run"
}

# field <state> <key>: numeric field from a run's SCALE_JSON
field() {
	sed -n 's/.*"'"$2"'":\([0-9.e+-]*\).*/\1/p' "$DIR/$1.json"
}

run auto
run dense

for st in auto dense; do
	accepted=$(field "$st" accepted)
	eps=$(field "$st" establishments_per_sec)
	peak=$(field "$st" peak_heap_bytes)
	echo "    $st: accepted=$accepted estab/s=$eps peak_heap_bytes=$peak"
	[ -n "$accepted" ] && [ "$accepted" -gt 0 ] || fail "$st run accepted no connections"
	[ -n "$eps" ] || fail "$st run reported no establishment rate"
done

echo "==> asserting layout equivalence (admissions and recovery stats)"
for key in arrivals accepted recovery_total_p50_hops recovery_total_p99_hops; do
	a=$(field auto "$key")
	d=$(field dense "$key")
	[ "$a" = "$d" ] || fail "$key differs between layouts: auto=$a dense=$d"
done

echo "==> asserting sparse heap high-water >= ${MIN_RATIO}x below dense"
auto_peak=$(field auto peak_heap_bytes)
dense_peak=$(field dense peak_heap_bytes)
ratio=$(awk "BEGIN { printf \"%.2f\", $dense_peak / $auto_peak }")
echo "    dense/sparse peak-heap ratio: $ratio"
[ "$dense_peak" -ge $((auto_peak * MIN_RATIO)) ] ||
	fail "sparse peak $auto_peak B is less than ${MIN_RATIO}x below dense peak $dense_peak B"

echo "PASS: scale smoke (ratio ${ratio}x at $NODES nodes)"
