#!/bin/sh
# bench.sh — run the per-experiment benchmarks and write a machine-readable
# snapshot next to the repo root.
#
# Usage:
#   scripts/bench.sh                # all benchmarks, BENCH_<date>.json
#   OUT=foo.json scripts/bench.sh   # custom output path
#   PATTERN=Fig4 scripts/bench.sh   # subset by benchmark name
#   SLO=0 scripts/bench.sh          # skip the establishment-SLO section
#   SCALE=0 scripts/bench.sh        # skip the web-scale throughput pass
#
# Each iteration of an experiment benchmark regenerates a full table or
# figure, so -benchtime 1x is one reproduction; -count 3 gives three
# samples per benchmark for eyeballing run-to-run variance.
#
# Micro-benchmarks (the telemetry hot paths) and the control-plane
# throughput benchmark are meaningless at 1x — one iteration measures
# setup, not the steady state — so a full run re-measures them with a
# wall-time budget. Those entries carry "pass": "walltime" and supersede
# the same benchmark's 1x entries in the merged output.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
COUNT=${COUNT:-3}
BENCHTIME=${BENCHTIME:-1x}
PATTERN=${PATTERN:-.}
OUT=${OUT:-BENCH_$(date +%Y%m%d).json}
SLO=${SLO:-1}
SCALE=${SCALE:-1}

raw=$(mktemp)
rawwall=$(mktemp)
slofile=$(mktemp)
tracefile=$(mktemp)
trap 'rm -f "$raw" "$rawwall" "$slofile" "$tracefile"' EXIT

"$GO" test -run NONE -bench "$PATTERN" -benchtime "$BENCHTIME" \
	-count "$COUNT" -benchmem ./... | tee "$raw"

: >"$rawwall"
if [ "$BENCHTIME" = "1x" ] && [ "$PATTERN" = "." ]; then
	# The control-plane establishment-throughput benchmark needs wall
	# time, not iteration counts, for a meaningful conns/s figure.
	CPBENCHTIME=${CPBENCHTIME:-2s}
	"$GO" test -run NONE -bench BenchmarkEstablishThroughput \
		-benchtime "$CPBENCHTIME" -count 1 -benchmem \
		./internal/controlplane/ | tee -a "$rawwall"
	# The telemetry instruments need steady-state iteration counts for
	# honest ns/op and allocs/op (the 1x pass measures registry setup).
	MICROBENCHTIME=${MICROBENCHTIME:-100000x}
	"$GO" test -run NONE -bench . -benchtime "$MICROBENCHTIME" \
		-count 1 -benchmem ./internal/telemetry/ | tee -a "$rawwall"
fi

# Establishment-latency/disruption SLO verdict over a quick Figure 4
# trace, embedded into the snapshot so every BENCH records whether the
# latency objectives held at that commit.
: >"$slofile"
if [ "$SLO" = "1" ] && [ "$PATTERN" = "." ]; then
	"$GO" run ./cmd/drtpsim -exp fig4 -quick -trace "$tracefile" >/dev/null
	"$GO" run ./cmd/drtptrace slo -unit minutes -format json "$tracefile" >"$slofile"
fi

# Web-scale pass: a quick -exp scale run contributes establishment
# throughput and steady-state APLV bytes per connection to summary.*,
# so every BENCH snapshot tracks the web-scale figures per commit.
scale_eps=""
scale_bpc=""
if [ "$SCALE" = "1" ] && [ "$PATTERN" = "." ]; then
	scalejson=$("$GO" run ./cmd/drtpsim -exp scale -quick | sed -n 's/^SCALE_JSON //p')
	scale_eps=$(printf '%s' "$scalejson" | sed -n 's/.*"establishments_per_sec":\([0-9.e+-]*\).*/\1/p')
	scale_bpc=$(printf '%s' "$scalejson" | sed -n 's/.*"bytes_per_conn":\([0-9.e+-]*\).*/\1/p')
fi

# Merge: wall-time entries are read first and supersede 1x entries of
# the same benchmark in the same package; everything is buffered and
# printed in END so the output is one valid JSON document.
awk -v go_version="$("$GO" env GOVERSION)" \
	-v goos="$("$GO" env GOOS)" -v goarch="$("$GO" env GOARCH)" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
	-v wallfile="$rawwall" -v slofile="$slofile" \
	-v scale_eps="$scale_eps" -v scale_bpc="$scale_bpc" '
function entry(name, pkg, pass,    json, i) {
	json = sprintf("{\"name\": \"%s\", \"pkg\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", \
		name, pkg, $2, $3)
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "B/op") json = json sprintf(", \"bytes_per_op\": %s", $i)
		if ($(i+1) == "allocs/op") json = json sprintf(", \"allocs_per_op\": %s", $i)
		if ($(i+1) == "conns/s") json = json sprintf(", \"conns_per_sec\": %s", $i)
	}
	if (pass != "") json = json sprintf(", \"pass\": \"%s\"", pass)
	return json "}"
}
/^pkg:/ { pkg = $2 }
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (FILENAME == wallfile) {
		superseded[name "|" pkg] = 1
		wall[nw++] = entry(name, pkg, "walltime")
	} else if (!((name "|" pkg) in superseded)) {
		main[nm++] = entry(name, pkg, "")
	}
	# Scaling summary inputs: mean ns/op of the sweep at workers=1 vs
	# workers=8, and the workers=1 allocation count (the perf-regression
	# tier tracks both; see internal/experiments/scaling_test.go).
	if (name == "BenchmarkSweepParallel/workers=1") {
		w1ns += $3; w1n++
		for (i = 4; i < NF; i++) if ($(i+1) == "allocs/op") { w1allocs += $i; w1an++ }
	}
	if (name == "BenchmarkSweepParallel/workers=8") { w8ns += $3; w8n++ }
}
END {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n", date, go_version
	printf "  \"platform\": \"%s/%s\",\n  \"commit\": \"%s\",\n", goos, goarch, commit
	printf "  \"benchtime\": \"'"$BENCHTIME"'\",\n  \"count\": '"$COUNT"',\n"
	printf "  \"results\": [\n"
	n = 0
	for (i = 0; i < nm; i++) { if (n++) printf ",\n"; printf "    %s", main[i] }
	for (i = 0; i < nw; i++) { if (n++) printf ",\n"; printf "    %s", wall[i] }
	printf "\n  ]"
	# Summary: wall-clock speedup of the sweep at workers=8 over
	# workers=1 (1.0 on a single-CPU host, where both degrade to the
	# serial path) and its workers=1 allocs/op — omitted when a PATTERN
	# subset excluded BenchmarkSweepParallel — plus the web-scale
	# figures from the -exp scale pass when it ran.
	nsum = 0
	if (w1n > 0 && w8n > 0) {
		sum[nsum++] = sprintf("\"speedup_w8_over_w1\": %.3f", (w1ns / w1n) / (w8ns / w8n))
		if (w1an > 0) sum[nsum++] = sprintf("\"allocs_per_op\": %.0f", w1allocs / w1an)
	}
	if (scale_eps != "") sum[nsum++] = sprintf("\"establishments_per_sec\": %s", scale_eps)
	if (scale_bpc != "") sum[nsum++] = sprintf("\"bytes_per_conn\": %s", scale_bpc)
	if (nsum > 0) {
		printf ",\n  \"summary\": {"
		for (i = 0; i < nsum; i++) printf "%s%s", (i ? ", " : ""), sum[i]
		printf "}"
	}
	first = 1
	while ((getline line < slofile) > 0) {
		if (first) { printf ",\n  \"slo\": "; first = 0 } else printf "\n  "
		printf "%s", line
	}
	printf "\n}\n"
}' "$rawwall" "$raw" >"$OUT"

echo "wrote $OUT"
