#!/bin/sh
# bench.sh — run the per-experiment benchmarks and write a machine-readable
# snapshot next to the repo root.
#
# Usage:
#   scripts/bench.sh                # all benchmarks, BENCH_<date>.json
#   OUT=foo.json scripts/bench.sh   # custom output path
#   PATTERN=Fig4 scripts/bench.sh   # subset by benchmark name
#
# Each iteration of an experiment benchmark regenerates a full table or
# figure, so -benchtime 1x is one reproduction; -count 3 gives three
# samples per benchmark for eyeballing run-to-run variance.
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
COUNT=${COUNT:-3}
BENCHTIME=${BENCHTIME:-1x}
PATTERN=${PATTERN:-.}
OUT=${OUT:-BENCH_$(date +%Y%m%d).json}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

"$GO" test -run NONE -bench "$PATTERN" -benchtime "$BENCHTIME" \
	-count "$COUNT" -benchmem ./... | tee "$raw"

# The control-plane establishment-throughput benchmark needs wall time,
# not iteration counts, for a meaningful conns/s figure: re-run it with
# its own budget when the main pass used the 1x experiment benchtime.
CPBENCHTIME=${CPBENCHTIME:-2s}
if [ "$BENCHTIME" = "1x" ] && [ "$PATTERN" = "." ]; then
	"$GO" test -run NONE -bench BenchmarkEstablishThroughput \
		-benchtime "$CPBENCHTIME" -count 1 -benchmem \
		./internal/controlplane/ | tee -a "$raw"
fi

awk -v go_version="$("$GO" env GOVERSION)" \
	-v goos="$("$GO" env GOOS)" -v goarch="$("$GO" env GOARCH)" \
	-v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n", date, go_version
	printf "  \"platform\": \"%s/%s\",\n  \"commit\": \"%s\",\n", goos, goarch, commit
	printf "  \"benchtime\": \"'"$BENCHTIME"'\",\n  \"count\": '"$COUNT"',\n"
	printf "  \"results\": [\n"
	n = 0
}
/^pkg:/ { pkg = $2 }
/^Benchmark/ && /ns\/op/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"pkg\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", \
		name, pkg, $2, $3
	for (i = 4; i < NF; i++) {
		if ($(i+1) == "B/op") printf ", \"bytes_per_op\": %s", $i
		if ($(i+1) == "allocs/op") printf ", \"allocs_per_op\": %s", $i
		if ($(i+1) == "conns/s") printf ", \"conns_per_sec\": %s", $i
	}
	printf "}"
}
END {
	printf "\n  ]\n}\n"
}' "$raw" >"$OUT"

echo "wrote $OUT"
