#!/bin/sh
# metrics_smoke.sh — end-to-end smoke test of the observability surface:
# boots a route finder, a setup coordinator and three node runtimes over
# loopback TCP with -metrics and -runtime-metrics on, establishes
# DR-connections through the coordinator, scrapes /metrics from the
# source node and the coordinator, validates the Prometheus text format
# and the presence of every instrument family this repo exposes, and
# renders the drtptrace slo report from the joined traces.
#
# Usage:
#   scripts/metrics_smoke.sh                 # artifacts in a temp dir
#   SMOKE_DIR=out scripts/metrics_smoke.sh   # keep artifacts in out/
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
DIR=${SMOKE_DIR:-$(mktemp -d)}
BASE=${SMOKE_PORT:-7250}
mkdir -p "$DIR"

PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
}
trap cleanup EXIT

fail() {
	echo "FAIL: $1" >&2
	echo "--- node0 log ---" >&2
	cat "$DIR/node0.log" >&2 || true
	echo "--- coord log ---" >&2
	cat "$DIR/coord.log" >&2 || true
	exit 1
}

await() {
	log=$1
	pattern=$2
	shift 2
	i=0
	until grep -q "$pattern" "$log" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 150 ] && fail "never saw '$pattern' in $log"
		[ $# -gt 0 ] && "$@"
		sleep 0.2
	done
}

echo "==> building"
"$GO" build -o "$DIR/drtpnode" ./cmd/drtpnode
"$GO" build -o "$DIR/drtptrace" ./cmd/drtptrace
"$GO" run ./cmd/topogen -kind ring -nodes 3 -json >"$DIR/topo.json"

PEERS="0=127.0.0.1:$BASE,1=127.0.0.1:$((BASE + 1)),2=127.0.0.1:$((BASE + 2))"
SERVICES="rf=127.0.0.1:$((BASE + 3)),coord=127.0.0.1:$((BASE + 4))"
COMMON="-topology $DIR/topo.json -peers $PEERS -services $SERVICES -heartbeat 100ms"

for name in rf coord node0 node1 node2; do
	mkfifo "$DIR/in-$name"
done

echo "==> starting route finder, coordinator, 3 nodes (metrics on)"
# shellcheck disable=SC2086  # COMMON is a word list by construction
"$DIR/drtpnode" -role routefinder $COMMON -trace "$DIR/rf.jsonl" \
	<"$DIR/in-rf" >"$DIR/rf.log" 2>&1 &
PIDS="$PIDS $!"
exec 3>"$DIR/in-rf"
# shellcheck disable=SC2086
"$DIR/drtpnode" -role setup $COMMON -trace "$DIR/coord.jsonl" \
	-metrics 127.0.0.1:0 -runtime-metrics \
	<"$DIR/in-coord" >"$DIR/coord.log" 2>&1 &
PIDS="$PIDS $!"
exec 4>"$DIR/in-coord"
n=0
for fd in 5 6 7; do
	METRICS=""
	[ "$n" = 0 ] && METRICS="-metrics 127.0.0.1:0 -runtime-metrics"
	# shellcheck disable=SC2086
	"$DIR/drtpnode" -role node -node $n $COMMON -trace "$DIR/node$n.jsonl" $METRICS \
		<"$DIR/in-node$n" >"$DIR/node$n.log" 2>&1 &
	PIDS="$PIDS $!"
	eval "exec $fd>\"$DIR/in-node$n\""
	n=$((n + 1))
done

echo "==> waiting for node 0 readiness"
await "$DIR/node0.log" '^> ready$' eval 'echo ready >&5'

echo "==> establishing DR-connections via the coordinator"
echo "request 1 2" >&5
await "$DIR/node0.log" 'requested 1: primary'
echo "request 2 1" >&5
await "$DIR/node0.log" 'requested 2: primary'

node_addr=$(sed -n 's|drtpnode: metrics on http://\(.*\)/metrics|\1|p' "$DIR/node0.log" | head -1)
coord_addr=$(sed -n 's|drtpnode: metrics on http://\(.*\)/metrics|\1|p' "$DIR/coord.log" | head -1)
[ -n "$node_addr" ] || fail "node 0 never announced its metrics address"
[ -n "$coord_addr" ] || fail "coordinator never announced its metrics address"

echo "==> scraping http://$node_addr/metrics and http://$coord_addr/metrics"
curl -fsS "http://$node_addr/metrics" >"$DIR/node0-metrics.txt" || fail "node 0 scrape failed"
curl -fsS "http://$coord_addr/metrics" >"$DIR/coord-metrics.txt" || fail "coordinator scrape failed"
curl -fsS "http://$node_addr/healthz" >/dev/null || fail "node 0 /healthz failed"
curl -fsS "http://$node_addr/readyz" >/dev/null || fail "node 0 /readyz failed"

echo "==> validating exposition text format"
for f in "$DIR/node0-metrics.txt" "$DIR/coord-metrics.txt"; do
	awk '
	/^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* / { next }
	/^#/ { print "bad comment line: " $0; bad = 1; next }
	/^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9.eE+-]+([eE][+-][0-9]+)?$/ { next }
	/^$/ { print "blank line in exposition"; bad = 1; next }
	{ print "bad sample line: " $0; bad = 1 }
	END { exit bad }
	' "$f" || fail "malformed exposition in $f"
done

echo "==> asserting required series"
for series in \
	drtp_events_total \
	drtp_router_establish_seconds \
	drtp_router_disruption_seconds_count \
	'drtp_router_hop_signal_seconds_count{role="primary"}' \
	drtp_runtime_goroutines \
	drtp_runtime_heap_objects_bytes \
	drtp_runtime_gc_cycles_total \
	drtp_runtime_gc_pause_seconds_count \
	drtp_telemetry_stream_written_total; do
	grep -qF "$series" "$DIR/node0-metrics.txt" || fail "node 0 exposition missing $series"
done
for series in \
	'drtp_cp_stage_seconds_count{stage="admission"}' \
	'drtp_cp_stage_seconds_count{stage="route_query"}' \
	'drtp_cp_stage_seconds_count{stage="establish"}' \
	'drtp_cp_stage_seconds_count{stage="total"}'; do
	grep -qF "$series" "$DIR/coord-metrics.txt" || fail "coordinator exposition missing $series"
done
# The coordinator served two establishments; the stage pipeline must
# have observed them.
total=$(sed -n 's/drtp_cp_stage_seconds_count{stage="total"} //p' "$DIR/coord-metrics.txt")
[ "${total:-0}" -ge 2 ] || fail "coordinator observed $total total-stage samples, want >= 2"

echo "==> shutting down"
for fd in 3 4 5 6 7; do
	eval "(echo quit >&$fd) 2>/dev/null || true"
done
sleep 1

echo "==> rendering the SLO report from the joined traces"
"$DIR/drtptrace" slo "$DIR"/rf.jsonl "$DIR"/coord.jsonl "$DIR"/node*.jsonl |
	tee "$DIR/slo-report.txt"
"$DIR/drtptrace" slo -format json "$DIR"/rf.jsonl "$DIR"/coord.jsonl "$DIR"/node*.jsonl \
	>"$DIR/slo-report.json"
grep -q 'establishment latency' "$DIR/slo-report.txt" || fail "slo report missing establishment section"
grep -q '"objectives"' "$DIR/slo-report.json" || fail "slo json missing objectives"

echo "PASS: metrics smoke (artifacts in $DIR)"
