#!/bin/sh
# controlplane_smoke.sh — end-to-end smoke test of the three-role
# control plane: boots a route finder, a setup coordinator and four
# node runtimes as separate drtpnode processes over loopback TCP,
# establishes a DR-connection through the coordinator, crashes the
# primary-route node, waits for backup activation, and asserts the
# recovery from the joined drtptrace report.
#
# Usage:
#   scripts/controlplane_smoke.sh                 # artifacts in a temp dir
#   SMOKE_DIR=out scripts/controlplane_smoke.sh   # keep artifacts in out/
set -eu

cd "$(dirname "$0")/.."

GO=${GO:-go}
DIR=${SMOKE_DIR:-$(mktemp -d)}
BASE=${SMOKE_PORT:-7150}
mkdir -p "$DIR"

PIDS=""
cleanup() {
	for pid in $PIDS; do
		kill "$pid" 2>/dev/null || true
	done
}
trap cleanup EXIT

fail() {
	echo "FAIL: $1" >&2
	echo "--- node0 log ---" >&2
	cat "$DIR/node0.log" >&2 || true
	echo "--- coord log ---" >&2
	cat "$DIR/coord.log" >&2 || true
	exit 1
}

# Poll for a pattern in a file, driving the console each round.
# usage: await <logfile> <pattern> [console-fd-command...]
await() {
	log=$1
	pattern=$2
	shift 2
	i=0
	until grep -q "$pattern" "$log" 2>/dev/null; do
		i=$((i + 1))
		[ "$i" -gt 150 ] && fail "never saw '$pattern' in $log"
		[ $# -gt 0 ] && "$@"
		sleep 0.2
	done
}

echo "==> building"
"$GO" build -o "$DIR/drtpnode" ./cmd/drtpnode
"$GO" build -o "$DIR/drtptrace" ./cmd/drtptrace
"$GO" run ./cmd/topogen -kind ring -nodes 4 -json >"$DIR/topo.json"

PEERS="0=127.0.0.1:$BASE,1=127.0.0.1:$((BASE + 1)),2=127.0.0.1:$((BASE + 2)),3=127.0.0.1:$((BASE + 3))"
SERVICES="rf=127.0.0.1:$((BASE + 4)),coord=127.0.0.1:$((BASE + 5))"
COMMON="-topology $DIR/topo.json -peers $PEERS -services $SERVICES -heartbeat 100ms"

# Each process keeps its console open on a FIFO so it serves until we
# say quit; fds 3-8 hold the write ends.
for name in rf coord node0 node1 node2 node3; do
	mkfifo "$DIR/in-$name"
done

echo "==> starting route finder, coordinator, 4 nodes"
# shellcheck disable=SC2086  # COMMON is a word list by construction
"$DIR/drtpnode" -role routefinder $COMMON -trace "$DIR/rf.jsonl" \
	<"$DIR/in-rf" >"$DIR/rf.log" 2>&1 &
PIDS="$PIDS $!"
exec 3>"$DIR/in-rf"
# shellcheck disable=SC2086
"$DIR/drtpnode" -role setup -quotas "default=100:1000" $COMMON -trace "$DIR/coord.jsonl" \
	<"$DIR/in-coord" >"$DIR/coord.log" 2>&1 &
PIDS="$PIDS $!"
exec 4>"$DIR/in-coord"
n=0
for fd in 5 6 7 8; do
	# shellcheck disable=SC2086
	"$DIR/drtpnode" -role node -node $n $COMMON -trace "$DIR/node$n.jsonl" \
		<"$DIR/in-node$n" >"$DIR/node$n.log" 2>&1 &
	eval "NODE${n}_PID=\$!"
	PIDS="$PIDS $!"
	eval "exec $fd>\"$DIR/in-node$n\""
	n=$((n + 1))
done

echo "==> waiting for node 0 readiness (registered + link-state synced)"
await "$DIR/node0.log" '^> ready$' eval 'echo ready >&5'

echo "==> establishing DR-connection 1: 0 -> 2 via coordinator"
echo "request 1 2" >&5
await "$DIR/node0.log" 'requested 1: primary'
grep 'requested 1' "$DIR/node0.log"

echo "==> crashing node 1 (primary route transit)"
# The ring's two 0->2 routes are 0-1-2 and 0-3-2; node 1 carries one of
# them. Kill whichever transit the primary actually used.
PRIMARY_MID=$(sed -n 's/.*requested 1: primary \[0 \([0-9]*\) 2\].*/\1/p' "$DIR/node0.log" | head -1)
[ -n "$PRIMARY_MID" ] || fail "could not parse primary transit node"
eval "kill -9 \$NODE${PRIMARY_MID}_PID"

echo "==> waiting for failure detection and backup activation"
# Trace files are buffered until process exit, so watch the live console
# instead; the coordinator's heartbeat-miss is asserted post-shutdown.
await "$DIR/node0.log" 'switched=true' eval 'echo info 1 >&5'
grep 'conn 1:' "$DIR/node0.log" | tail -1

echo "==> establishing a second connection on the degraded network"
echo "request 2 2" >&5
await "$DIR/node0.log" 'requested 2: primary'

echo "==> shutting down"
# The crashed node's FIFO has no reader, so write each quit from a
# subshell: a SIGPIPE there cannot take the script down.
for fd in 3 4 5 6 7 8; do
	eval "(echo quit >&$fd) 2>/dev/null || true"
done
sleep 1

echo "==> asserting recovery via drtptrace"
# Join the surviving processes' traces (the crashed node's file may be
# mid-write) and require the connection timeline to show a backup
# activation after the failure.
TRACES="$DIR/rf.jsonl $DIR/coord.jsonl"
for t in "$DIR"/node*.jsonl; do
	[ "$t" = "$DIR/node$PRIMARY_MID.jsonl" ] && continue
	TRACES="$TRACES $t"
done
# shellcheck disable=SC2086
"$DIR/drtptrace" -conn 1 $TRACES | tee "$DIR/conn1-timeline.txt"
grep -q 'backup-activate' "$DIR/conn1-timeline.txt" || fail "no backup-activate in conn 1 timeline"
# shellcheck disable=SC2086
"$DIR/drtptrace" $TRACES | tee "$DIR/report.txt"
grep -q 'node-join' "$DIR/coord.jsonl" || fail "no node-join events in coordinator trace"
grep -q '"heartbeat-miss"' "$DIR/coord.jsonl" || fail "no heartbeat-miss in coordinator trace"

echo "PASS: control-plane smoke (artifacts in $DIR)"
