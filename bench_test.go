package drtp_test

// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see the experiment index in DESIGN.md), plus micro-benches
// for the hot paths. The figure benches run scaled-down parameter points
// (smaller network, shorter horizon) so `go test -bench` stays fast; the
// full-scale reproduction is `drtpsim -exp all` and EXPERIMENTS.md.

import (
	"fmt"
	"testing"

	"github.com/rtcl/drtp"
)

// benchParams returns a scaled-down evaluation point.
func benchParams(degree float64) drtp.ExperimentParams {
	p := drtp.DefaultExperimentParams(degree)
	p.Nodes = 30
	p.Duration = 120
	p.Warmup = 60
	p.EvalInterval = 20
	if degree >= 4 {
		p.Lambdas = []float64{0.8}
	} else {
		p.Lambdas = []float64{0.4}
	}
	return p
}

// BenchmarkTable1 regenerates Table 1 (simulation setup): topology plus
// network construction at the paper's full scale.
func BenchmarkTable1(b *testing.B) {
	p := drtp.DefaultExperimentParams(3)
	for i := 0; i < b.N; i++ {
		g, err := p.Topology()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := drtp.NewNetwork(g, p.Capacity, p.UnitBW); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkSweep runs one Figure 4/5 evaluation cell set per iteration.
func benchmarkSweep(b *testing.B, degree float64) {
	p := benchParams(degree)
	for i := 0; i < b.N; i++ {
		sweep, err := drtp.RunSweep(p, drtp.PaperSchemes())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range sweep.Rows {
			if !row.Result.FTValid {
				b.Fatalf("cell %s/%s has no fault-tolerance sample", row.Pattern, row.Scheme)
			}
		}
	}
}

// BenchmarkSweepParallel regenerates the Figure 4/5 cell set at fixed
// worker counts; compare the per-count results to see the parallel
// engine's speedup (the output is bit-identical at every count, so only
// wall-clock differs). On a single-CPU host all counts degrade to the
// serial path.
func BenchmarkSweepParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p := benchParams(3)
			p.Lambdas = []float64{0.2, 0.4, 0.6}
			p.Workers = workers
			for i := 0; i < b.N; i++ {
				sweep, err := drtp.RunSweep(p, drtp.PaperSchemes())
				if err != nil {
					b.Fatal(err)
				}
				if len(sweep.Rows) != 2*3*3 {
					b.Fatalf("rows = %d", len(sweep.Rows))
				}
			}
		})
	}
}

// BenchmarkFig4E3 regenerates Figure 4(a): fault tolerance vs lambda, E=3.
func BenchmarkFig4E3(b *testing.B) { benchmarkSweep(b, 3) }

// BenchmarkFig4E4 regenerates Figure 4(b): fault tolerance vs lambda, E=4.
func BenchmarkFig4E4(b *testing.B) { benchmarkSweep(b, 4) }

// BenchmarkFig5E3 regenerates Figure 5(a): capacity overhead vs lambda,
// E=3 (the same runs as Figure 4 plus the no-backup baseline; the
// overhead arithmetic itself is what this bench adds).
func BenchmarkFig5E3(b *testing.B) {
	p := benchParams(3)
	for i := 0; i < b.N; i++ {
		sweep, err := drtp.RunSweep(p, drtp.PaperSchemes())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range sweep.Rows {
			if oh := row.CapacityOverhead(); oh < 0 || oh > 1 {
				b.Fatalf("overhead = %v", oh)
			}
		}
	}
}

// BenchmarkFig5E4 regenerates Figure 5(b): capacity overhead, E=4.
func BenchmarkFig5E4(b *testing.B) {
	p := benchParams(4)
	for i := 0; i < b.N; i++ {
		sweep, err := drtp.RunSweep(p, drtp.PaperSchemes())
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range sweep.Rows {
			_ = row.CapacityOverhead()
		}
	}
}

// BenchmarkOverheadX1 regenerates the §6 discovery-overhead comparison
// (experiment X1 in DESIGN.md).
func BenchmarkOverheadX1(b *testing.B) {
	p := benchParams(3)
	for i := 0; i < b.N; i++ {
		if _, err := drtp.RunOverhead(p, drtp.UT, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationX2 regenerates the design-choice ablation (experiment
// X2 in DESIGN.md: multiplexed vs dedicated spares, conflict-aware vs
// blind routing).
func BenchmarkAblationX2(b *testing.B) {
	p := benchParams(3)
	for i := 0; i < b.N; i++ {
		if _, err := drtp.RunAblation(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks -----------------------------------------------

func benchNetwork(b *testing.B, degree float64) (*drtp.Graph, *drtp.Network) {
	b.Helper()
	g, err := drtp.Waxman(drtp.WaxmanConfig{Nodes: 60, AvgDegree: degree, MinDegree: 2, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 40, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g, net
}

// benchmarkEstablishRelease measures one establish+release cycle. Pairs
// for which the scheme finds no backup (possible for BF on sparse
// topologies) are skipped rather than failed — that is an admission
// outcome, not a benchmark error.
func benchmarkEstablishRelease(b *testing.B, scheme drtp.Scheme, opts ...drtp.ManagerOption) {
	g, net := benchNetwork(b, 3)
	mgr := drtp.NewManager(net, scheme, opts...)
	n := drtp.NodeID(g.NumNodes())
	established := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := drtp.NodeID(i) % n
		dst := (src + n/2) % n
		id := drtp.ConnID(i)
		if _, err := mgr.Establish(drtp.Request{ID: id, Src: src, Dst: dst}); err != nil {
			continue
		}
		established++
		if err := mgr.Release(id); err != nil {
			b.Fatal(err)
		}
	}
	if established == 0 {
		b.Fatal("no request succeeded")
	}
}

func BenchmarkEstablishDLSR(b *testing.B) { benchmarkEstablishRelease(b, drtp.NewDLSR()) }

// BenchmarkEstablishDLSRTraced is BenchmarkEstablishDLSR with a sink-less
// tracer attached: the diff between the two is the telemetry subsystem's
// cost on the admission hot path when tracing is configured but inert
// (it must stay within noise — a few ns against an ~µs establish).
func BenchmarkEstablishDLSRTraced(b *testing.B) {
	benchmarkEstablishRelease(b, drtp.NewDLSR(), drtp.WithTelemetry(drtp.NewTracer()))
}

func BenchmarkEstablishPLSR(b *testing.B) { benchmarkEstablishRelease(b, drtp.NewPLSR()) }

func BenchmarkEstablishBF(b *testing.B) {
	benchmarkEstablishRelease(b, drtp.NewBoundedFloodingDefault())
}

// BenchmarkFailureSweep measures a full single-link failure sweep over a
// loaded network.
func BenchmarkFailureSweep(b *testing.B) {
	g, net := benchNetwork(b, 3)
	mgr := drtp.NewManager(net, drtp.NewDLSR())
	n := drtp.NodeID(g.NumNodes())
	for i := 0; i < 300; i++ {
		src := drtp.NodeID(i) % n
		dst := (src + 1 + drtp.NodeID(i/2)%(n-1)) % n
		if src == dst {
			continue
		}
		// Saturation rejections are fine; keep whatever fits.
		_, _ = mgr.Establish(drtp.Request{ID: drtp.ConnID(i), Src: src, Dst: dst})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		outcomes := mgr.SweepFailures(drtp.LinkFailures)
		if len(outcomes) != g.NumLinks() {
			b.Fatal("short sweep")
		}
	}
}

// BenchmarkScenarioGenerate measures trace generation at full scale.
func BenchmarkScenarioGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := drtp.GenerateScenario(drtp.ScenarioConfig{
			Nodes:    60,
			Lambda:   0.5,
			Duration: 400,
			Pattern:  drtp.NT,
			Seed:     int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if sc.NumArrivals() == 0 {
			b.Fatal("empty scenario")
		}
	}
}

// BenchmarkWaxman measures topology generation at full scale.
func BenchmarkWaxman(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := drtp.Waxman(drtp.WaxmanConfig{
			Nodes: 60, AvgDegree: 3, MinDegree: 2, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if !g.Connected() {
			b.Fatal("disconnected")
		}
	}
}

// BenchmarkMultiBackupX3 regenerates the multiple-backup study
// (experiment X3 in DESIGN.md).
func BenchmarkMultiBackupX3(b *testing.B) {
	p := benchParams(3)
	for i := 0; i < b.N; i++ {
		if _, err := drtp.RunMultiBackup(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAvailabilityX4 regenerates the destructive-failure
// availability study (experiment X4 in DESIGN.md).
func BenchmarkAvailabilityX4(b *testing.B) {
	ap := drtp.DefaultAvailabilityParams(3)
	ap.Params = benchParams(3)
	ap.Lambda = 0.4
	for i := 0; i < b.N; i++ {
		if _, err := drtp.RunAvailability(ap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQoSX5 regenerates the delay-bound study (experiment X5 in
// DESIGN.md).
func BenchmarkQoSX5(b *testing.B) {
	p := benchParams(3)
	for i := 0; i < b.N; i++ {
		if _, err := drtp.RunQoS(p, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBoundedDijkstra measures the constrained shortest-path search
// behind QoS-bounded backups.
func BenchmarkBoundedDijkstra(b *testing.B) {
	g, _ := benchNetwork(b, 3)
	cost := func(drtp.LinkID) float64 { return 1 }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := drtp.NodeID(i % g.NumNodes())
		dst := drtp.NodeID((i + 29) % g.NumNodes())
		if src == dst {
			continue
		}
		drtp.ShortestPathBounded(g, src, dst, cost, 8)
	}
}

// BenchmarkApplyFailure measures one destructive failure application on a
// loaded network (switching + re-protection).
func BenchmarkApplyFailure(b *testing.B) {
	g, net := benchNetwork(b, 3)
	mgr := drtp.NewManager(net, drtp.NewDLSR())
	n := drtp.NodeID(g.NumNodes())
	for i := 0; i < 200; i++ {
		src := drtp.NodeID(i) % n
		dst := (src + 1 + drtp.NodeID(i/2)%(n-1)) % n
		if src == dst {
			continue
		}
		_, _ = mgr.Establish(drtp.Request{ID: drtp.ConnID(i), Src: src, Dst: dst})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := drtp.EdgeID(i % g.NumEdges())
		mgr.ApplyEdgeFailure(e)
		net.RestoreEdge(e)
	}
}

// BenchmarkTopologiesX6 regenerates the topology-sensitivity study
// (experiment X6 in DESIGN.md).
func BenchmarkTopologiesX6(b *testing.B) {
	p := benchParams(3)
	for i := 0; i < b.N; i++ {
		if _, err := drtp.RunTopologySensitivity(p, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}
