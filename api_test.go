package drtp_test

// Integration tests exercising the public façade end to end, mirroring
// the flows a library user follows (and the runnable examples).

import (
	"errors"
	"testing"
	"time"

	"github.com/rtcl/drtp"
)

func testNetwork(t *testing.T) (*drtp.Graph, *drtp.Network) {
	t.Helper()
	g, err := drtp.Waxman(drtp.WaxmanConfig{Nodes: 24, AvgDegree: 3, MinDegree: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	return g, net
}

func TestQuickstartFlow(t *testing.T) {
	g, net := testNetwork(t)
	mgr := drtp.NewManager(net, drtp.NewDLSR())

	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 13})
	if err != nil {
		t.Fatal(err)
	}
	if conn.Primary.Empty() || !conn.HasBackup() {
		t.Fatalf("conn = %+v", conn)
	}
	if conn.Primary.Source(g) != 0 || conn.Primary.Dest(g) != 13 {
		t.Fatal("primary endpoints wrong")
	}

	out := mgr.EvaluateLinkFailure(conn.Primary.Links()[0])
	if out.Affected != 1 || out.Recovered != 1 {
		t.Fatalf("outcome = %+v", out)
	}

	ft, ok := drtp.FaultTolerance(mgr.SweepFailures(drtp.LinkFailures))
	if !ok || ft != 1 {
		t.Fatalf("fault tolerance = %v ok=%v", ft, ok)
	}
	if err := mgr.Release(1); err != nil {
		t.Fatal(err)
	}
	if net.DB().TotalPrimeBW() != 0 || net.DB().TotalSpareBW() != 0 {
		t.Fatal("resources leaked")
	}
}

func TestAllSchemesThroughFacade(t *testing.T) {
	schemes := []drtp.Scheme{
		drtp.NewDLSR(),
		drtp.NewPLSR(),
		drtp.NewDLSR(drtp.WithBackupCount(2)),
		drtp.NewBoundedFloodingDefault(),
		drtp.NewBoundedFlooding(drtp.FloodParams{Rho: 1, P: 2, Alpha: 1, Beta: 0}),
		drtp.NewMinHopDisjoint(),
		drtp.NewRandom(5),
	}
	for _, scheme := range schemes {
		_, net := testNetwork(t)
		mgr := drtp.NewManager(net, scheme, drtp.WithOptionalBackup())
		accepted := 0
		for id := drtp.ConnID(1); id <= 10; id++ {
			src := drtp.NodeID(int(id) % 24)
			dst := drtp.NodeID((int(id) + 11) % 24)
			if _, err := mgr.Establish(drtp.Request{ID: id, Src: src, Dst: dst}); err == nil {
				accepted++
			}
		}
		if accepted < 8 {
			t.Errorf("%s: accepted only %d/10 on an empty network", scheme.Name(), accepted)
		}
	}
}

func TestScenarioSimFlow(t *testing.T) {
	_, net := testNetwork(t)
	sc, err := drtp.GenerateScenario(drtp.ScenarioConfig{
		Nodes:    24,
		Lambda:   0.2,
		Duration: 120,
		Pattern:  drtp.NT,
		Seed:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := drtp.RunSim(net, drtp.NewPLSR(), sc, drtp.SimConfig{
		Warmup:       40,
		EvalInterval: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FTValid || res.Stats.Accepted == 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestScenarioFileRoundTripFacade(t *testing.T) {
	sc, err := drtp.GenerateScenario(drtp.ScenarioConfig{
		Nodes: 10, Lambda: 0.2, Duration: 60, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.jsonl"
	if err := sc.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := drtp.LoadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Events) != len(sc.Events) {
		t.Fatal("round trip lost events")
	}
}

func TestDestructiveFailureFlow(t *testing.T) {
	_, net := testNetwork(t)
	mgr := drtp.NewManager(net, drtp.NewDLSR())
	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 13})
	if err != nil {
		t.Fatal(err)
	}
	out := mgr.ApplyLinkFailure(conn.Primary.Links()[0])
	if out.Switched != 1 {
		t.Fatalf("outcome = %+v", out)
	}
	// D-LSR implements BackupRouter: protection is restored.
	if out.BackupsReestablished == 0 {
		t.Fatal("no backup re-established after switch")
	}
	conn, _ = mgr.Get(1)
	if !conn.HasBackup() {
		t.Fatal("switched connection left unprotected")
	}
}

func TestErrorSentinels(t *testing.T) {
	g, err := drtp.FromEdgeList(2, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := drtp.NewNetwork(g, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mgr := drtp.NewManager(net, drtp.NewDLSR())
	// Two-node line: primary takes the only link; backup must reuse it,
	// which the register accepts (spare rides on capacity - prime)...
	// with capacity 1 the backup register fails, so the request is
	// rejected with ErrNoBackup.
	_, err = mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 1})
	if !errors.Is(err, drtp.ErrNoBackup) {
		t.Fatalf("err = %v", err)
	}
	// Fill the link so not even a primary fits.
	if err := net.DB().ReservePrimary(99, 0); err != nil {
		t.Fatal(err)
	}
	_, err = mgr.Establish(drtp.Request{ID: 2, Src: 0, Dst: 1})
	if !errors.Is(err, drtp.ErrNoRoute) {
		t.Fatalf("err = %v", err)
	}
}

func TestDistributedFacade(t *testing.T) {
	g, err := drtp.Ring(6)
	if err != nil {
		t.Fatal(err)
	}
	mem := drtp.NewMemTransport()
	defer mem.Close()
	cluster, err := drtp.NewRouterCluster(drtp.RouterConfig{
		Graph:         g,
		Capacity:      10,
		UnitBW:        1,
		HelloInterval: 10 * time.Millisecond,
		LSInterval:    20 * time.Millisecond,
	}, mem)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	info, err := cluster.Router(0).Establish(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Primary) == 0 || len(info.Backup) == 0 {
		t.Fatalf("info = %+v", info)
	}
	cluster.FailEdge(info.Primary[0], info.Primary[1])
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, ok := cluster.Router(0).Conn(1)
		if ok && got.Switched {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timeout waiting for switch")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestExperimentFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	p := drtp.DefaultExperimentParams(3)
	p.Nodes = 20
	p.Capacity = 15
	p.Duration = 120
	p.Warmup = 60
	p.EvalInterval = 30
	p.Lambdas = []float64{0.3}
	p.Patterns = []drtp.Pattern{drtp.UT}
	sweep, err := drtp.RunSweep(p, drtp.PaperSchemes())
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Rows) != 3 {
		t.Fatalf("rows = %d", len(sweep.Rows))
	}
	for _, row := range sweep.Rows {
		if ft := row.FaultTolerance(); ft < 0.5 {
			t.Errorf("%s: implausible fault tolerance %v", row.Scheme, ft)
		}
	}
}

func TestJointSchemeFacade(t *testing.T) {
	_, net := testNetwork(t)
	mgr := drtp.NewManager(net, drtp.NewJoint())
	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 13})
	if err != nil {
		t.Fatal(err)
	}
	if conn.Backup().SharedLinks(conn.Primary) != 0 {
		t.Fatal("joint pair overlaps")
	}
}

func TestQoSThroughFacade(t *testing.T) {
	g, net := testNetwork(t)
	mgr := drtp.NewManager(net, drtp.NewDLSR())
	d := net.Distances().Hops(0, 13)
	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 13, MaxHops: d + 1})
	if err != nil {
		t.Fatal(err)
	}
	if conn.Primary.Hops() > d+1 || conn.Backup().Hops() > d+1 {
		t.Fatalf("bound violated: %d/%d > %d", conn.Primary.Hops(), conn.Backup().Hops(), d+1)
	}
	_ = g
}

func TestMultiBackupThroughFacade(t *testing.T) {
	_, net := testNetwork(t)
	mgr := drtp.NewManager(net, drtp.NewDLSR(drtp.WithBackupCount(2)))
	conn, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 13})
	if err != nil {
		t.Fatal(err)
	}
	if len(conn.Backups) < 1 {
		t.Fatal("no backups")
	}
	for i, a := range conn.Backups {
		for _, b := range conn.Backups[i+1:] {
			if a.SharedLinks(b) != 0 {
				t.Fatal("backups overlap each other")
			}
		}
	}
}

func TestBarabasiAlbertFacade(t *testing.T) {
	g, err := drtp.BarabasiAlbert(drtp.BarabasiAlbertConfig{Nodes: 30, M: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Connected() {
		t.Fatal("disconnected")
	}
	net, err := drtp.NewNetwork(g, 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	mgr := drtp.NewManager(net, drtp.NewPLSR())
	if _, err := mgr.Establish(drtp.Request{ID: 1, Src: 0, Dst: 17}); err != nil {
		t.Fatal(err)
	}
}
